"""Hierarchical (nested) stochastic block partitioning.

Peixoto's nested blockmodel observes that the block graph of an SBP
partition is itself a graph with community structure; recursively
partitioning it yields a hierarchy of progressively coarser views —
useful both for multi-scale analysis and because upper levels regularise
the resolution limit of flat SBP.

:class:`HierarchicalGSAP` implements the greedy variant: run GSAP on the
input graph, collapse to the quotient graph, and repeat while the
quotient keeps meaningful structure (more than ``min_top_blocks`` blocks
and a genuine MDL reduction at the level below).  Every level's
partition can be projected back to vertex space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..analysis.block_graph import quotient_graph
from ..graph.transforms import remove_self_loops
from ..config import SBPConfig
from ..errors import PartitionError
from ..graph.csr import DiGraphCSR
from ..gpusim.device import Device, get_default_device
from ..types import IndexArray
from .partitioner import GSAPPartitioner
from .result import PartitionResult


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the nested partition.

    ``partition`` maps the level's *input* nodes (vertices at level 0,
    level-(k-1) blocks for k > 0) to this level's blocks.
    """

    level: int
    num_input_nodes: int
    num_blocks: int
    mdl: float
    partition: IndexArray


@dataclass
class HierarchyResult:
    """A full nested partition."""

    levels: List[HierarchyLevel] = field(default_factory=list)
    base_result: Optional[PartitionResult] = None

    @property
    def depth(self) -> int:
        return len(self.levels)

    def vertex_partition(self, level: int) -> IndexArray:
        """Project *level*'s blocks down to per-vertex labels."""
        if not (0 <= level < self.depth):
            raise PartitionError(
                f"level {level} out of range [0, {self.depth})"
            )
        labels = self.levels[0].partition.copy()
        for k in range(1, level + 1):
            labels = self.levels[k].partition[labels]
        return labels

    def block_counts(self) -> List[int]:
        return [lvl.num_blocks for lvl in self.levels]


class HierarchicalGSAP:
    """Greedy nested SBP built on :class:`GSAPPartitioner`."""

    def __init__(
        self,
        config: Optional[SBPConfig] = None,
        device: Optional[Device] = None,
        max_levels: int = 8,
        min_top_blocks: int = 2,
    ) -> None:
        if max_levels < 1:
            raise PartitionError("max_levels must be >= 1")
        if min_top_blocks < 1:
            raise PartitionError("min_top_blocks must be >= 1")
        self.config = config or SBPConfig()
        self.device = device or get_default_device()
        self.max_levels = max_levels
        self.min_top_blocks = min_top_blocks

    def partition(self, graph: DiGraphCSR) -> HierarchyResult:
        """Build the hierarchy bottom-up."""
        result = HierarchyResult()
        current = graph
        for level in range(self.max_levels):
            partitioner = GSAPPartitioner(
                self.config.replace(seed=self.config.seed + level),
                device=self.device,
            )
            flat = partitioner.partition(current)
            if level == 0:
                result.base_result = flat
            result.levels.append(
                HierarchyLevel(
                    level=level,
                    num_input_nodes=current.num_vertices,
                    num_blocks=flat.num_blocks,
                    mdl=flat.mdl,
                    partition=flat.partition.copy(),
                )
            )
            if flat.num_blocks <= self.min_top_blocks:
                break
            if flat.num_blocks >= current.num_vertices:
                break  # no coarsening achieved; stop
            # Upper levels infer *super*-structure, which lives in the
            # inter-block connectivity; the quotient's self-loops carry
            # the intra-block mass already explained one level down and
            # would otherwise swamp the signal, so they are dropped.
            coarse = remove_self_loops(
                quotient_graph(current, flat.partition).graph
            )
            if coarse.num_edges == 0:
                break  # blocks are mutually disconnected; nothing above
            current = coarse
        return result
