"""repro — reproduction of *GSAP: A GPU-Accelerated Stochastic Graph
Partitioner* (Chang, Zhang, Huang; ICPP 2024).

The package provides:

* :class:`GSAPPartitioner` — the paper's system: stochastic block
  partitioning with lookup-table proposal generation, batched ΔMDL
  evaluation, and full blockmodel rebuilds, executed on a simulated GPU
  device (:mod:`repro.gpusim`);
* CPU baselines (:mod:`repro.baselines`) modelled on uSAP and I-SBP;
* the DC-SBM dataset generator reproducing the HPEC SBPC benchmark
  categories (:mod:`repro.graph`);
* quality metrics (:mod:`repro.metrics`) and the benchmark harness
  (:mod:`repro.bench`) regenerating every table and figure of the paper.

Quickstart
----------
>>> from repro import GSAPPartitioner, load_dataset, nmi
>>> graph, truth = load_dataset("low_low", 1_000)
>>> result = GSAPPartitioner().partition(graph)
>>> score = nmi(result.partition, truth)
"""

from .analysis import compare_partitions, quotient_graph, summarize_partition
from .checkpoint import (
    RunCheckpoint,
    load_result,
    load_run_checkpoint,
    save_result,
    save_run_checkpoint,
)
from .config import (
    IntegrityConfig,
    ObservabilityConfig,
    ResilienceConfig,
    SBPConfig,
)
from .core import (
    GSAPPartitioner,
    PartitionResult,
    StreamingGSAP,
    partition_graph,
)
from .errors import (
    CheckpointCorruptError,
    CheckpointError,
    ConfigError,
    ConvergenceError,
    DatasetError,
    DeviceError,
    FaultInjected,
    GraphFormatError,
    GraphValidationError,
    IntegrityError,
    NumericalError,
    PartitionError,
    ReproError,
    RetryExhaustedError,
)
from .integrity import (
    IntegrityManager,
    IntegrityStats,
    audit_blockmodel,
    reference_blockmodel,
)
from .resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResilienceStats,
    RetryPolicy,
    install_fault_injector,
    with_retries,
)
from .graph import (
    DiGraphCSR,
    build_graph,
    generate_category_graph,
    generate_dcsbm,
    load_dataset,
    load_edge_list,
    load_graph_with_truth,
)
from .gpusim import A4000, Device, get_default_device
from .metrics import ari, nmi, pairwise_scores
from .obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    build_run_report,
    write_chrome_trace,
    write_prometheus,
)

__version__ = "1.0.0"

__all__ = [
    "compare_partitions",
    "quotient_graph",
    "summarize_partition",
    "load_result",
    "save_result",
    "RunCheckpoint",
    "load_run_checkpoint",
    "save_run_checkpoint",
    "StreamingGSAP",
    "SBPConfig",
    "ResilienceConfig",
    "ObservabilityConfig",
    "IntegrityConfig",
    "GSAPPartitioner",
    "PartitionResult",
    "partition_graph",
    "CheckpointError",
    "CheckpointCorruptError",
    "ConfigError",
    "ConvergenceError",
    "DatasetError",
    "DeviceError",
    "FaultInjected",
    "GraphFormatError",
    "GraphValidationError",
    "IntegrityError",
    "NumericalError",
    "PartitionError",
    "ReproError",
    "RetryExhaustedError",
    "IntegrityManager",
    "IntegrityStats",
    "audit_blockmodel",
    "reference_blockmodel",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ResilienceStats",
    "RetryPolicy",
    "install_fault_injector",
    "with_retries",
    "DiGraphCSR",
    "build_graph",
    "generate_category_graph",
    "generate_dcsbm",
    "load_dataset",
    "load_edge_list",
    "load_graph_with_truth",
    "A4000",
    "Device",
    "get_default_device",
    "ari",
    "nmi",
    "pairwise_scores",
    "Observability",
    "Tracer",
    "MetricsRegistry",
    "build_run_report",
    "write_chrome_trace",
    "write_prometheus",
    "__version__",
]
