"""Deterministic fault injection for the simulated device stack.

Long SBP runs die to transient device faults — OOMs, failed kernel
launches, stalled transfers, broken streams.  This module lets tests and
chaos runs trigger those faults *deterministically*: a :class:`FaultPlan`
names which operation index of which fault class should fail, a
:class:`FaultInjector` installed on a :class:`~repro.gpusim.device.Device`
counts operations and fires the planned faults, and every fault is an
exception that multiply-inherits :class:`~repro.errors.FaultInjected`
plus the device error it imitates, so recovery code cannot tell an
injected fault from a real one.

Fault classes
-------------
``oom``
    Raises :class:`InjectedMemoryFault` (a ``DeviceMemoryError``) from
    ``Device.allocate`` or from kernels moving at least ``min_bytes``.
``kernel``
    Raises :class:`InjectedKernelFault` (a ``KernelLaunchError``) from
    ``Device.execute``.
``transfer_stall``
    Does not raise; adds ``stall_s`` simulated seconds to a host<->device
    transfer (the run absorbs it, the sim clock shows it).
``stream``
    Raises :class:`InjectedStreamFault` (a ``DeviceError``) from
    ``Stream.launch``.
``bitflip``
    Does not raise; *silently* flips one bit of a corruptible structure
    exposed through :meth:`FaultInjector.on_corruptible` (CSR arrays,
    block degrees, the assignment vector).  Detection is the integrity
    subsystem's job (:mod:`repro.integrity`), not the injector's.
``value_corrupt``
    Does not raise; silently overwrites one element of a corruptible
    structure with ``value``.

Communication fault classes (consumed by :mod:`repro.dist`, not by the
device injector; see ``docs/distributed.md``)
--------------------------------------------
``msg_drop``
    A framed message vanishes on the wire; the receiver detects the loss
    and requests a bounded retransmit.
``msg_duplicate``
    A framed message is delivered twice; the receiver dedupes by
    sequence number.
``msg_reorder``
    A receiver's inbox for one round is delivered in a shuffled order
    (seeded); frames are reassembled by sequence number.
``msg_corrupt``
    One bit of a frame is flipped in flight; the CRC32 check rejects the
    frame and triggers a retransmit.
``rank_crash``
    The rank named by ``rank`` goes permanently silent at round ``at``;
    survivors detect the missing heartbeat and run the recovery
    protocol.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import (
    DeviceError,
    DeviceMemoryError,
    FaultInjected,
    KernelLaunchError,
    ReproError,
)
from ..rng import make_rng

PathLike = Union[str, os.PathLike]

FAULT_KINDS = (
    "oom",
    "kernel",
    "transfer_stall",
    "stream",
    "bitflip",
    "value_corrupt",
    "msg_drop",
    "msg_duplicate",
    "msg_reorder",
    "msg_corrupt",
    "rank_crash",
)

#: Fault kinds that corrupt state silently instead of raising.
CORRUPTION_KINDS = ("bitflip", "value_corrupt")

#: Fault kinds that target individual frames of the simulated
#: interconnect (``at`` counts matching send/delivery operations).
MESSAGE_FAULT_KINDS = ("msg_drop", "msg_duplicate", "msg_reorder", "msg_corrupt")

#: All fault kinds consumed by the distributed runtime instead of the
#: device injector.
COMM_FAULT_KINDS = MESSAGE_FAULT_KINDS + ("rank_crash",)


class InjectedMemoryFault(FaultInjected, DeviceMemoryError):
    """An injected (simulated) device out-of-memory condition."""


class InjectedKernelFault(FaultInjected, KernelLaunchError):
    """An injected kernel-launch failure."""


class InjectedStreamFault(FaultInjected, DeviceError):
    """An injected stream failure."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        0-based operation index (within the fault class's own counter,
        filtered by *phase* when given) at which the fault fires.
    count:
        How many consecutive operations starting at *at* are faulted
        (``count=2`` models a fault that survives one retry).  Use a
        large count to model a persistent fault.
    phase:
        Only operations tagged with this phase increment the counter and
        can fire (``None`` matches every phase).  ``oom`` faults on bare
        allocations (no phase) only match specs with ``phase=None``.
    min_bytes:
        For ``oom``: only allocations / kernels moving at least this many
        bytes can fire.  This is what makes batch-halving degradation
        *actually* clear the fault — smaller batches move fewer bytes.
    stall_s:
        For ``transfer_stall``: simulated seconds added to the transfer.
    target:
        For corruption kinds: only structures exposed under this tag
        (e.g. ``"csr_out_wgt"``, ``"bmap"``) increment the counter and
        can be corrupted (``None`` matches every structure).
    index:
        For corruption kinds: flat element index to corrupt, taken
        modulo the array length so any index is valid for any structure.
    bit:
        For ``bitflip``: which bit of the element to flip (0..63,
        interpreted little-endian across the element's bytes).
    value:
        For ``value_corrupt``: the replacement value written into the
        element (cast to the array's dtype).
    rank:
        For communication kinds: the rank the fault targets.  For the
        message kinds this filters on the *sending* rank of the frame
        (``None`` matches every sender; for ``msg_reorder`` it filters
        on the receiving rank).  For ``rank_crash`` it names the rank
        that dies and is mandatory.  For ``rank_crash``, ``at`` indexes
        communication *rounds*, not individual frames.
    """

    kind: str
    at: int = 0
    count: int = 1
    phase: Optional[str] = None
    min_bytes: int = 0
    stall_s: float = 0.0
    target: Optional[str] = None
    index: int = 0
    bit: int = 0
    value: float = -1.0
    rank: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 0 or self.count < 1:
            raise ReproError(
                f"fault spec needs at >= 0 and count >= 1, got at={self.at} "
                f"count={self.count}"
            )
        if self.min_bytes < 0 or self.stall_s < 0:
            raise ReproError("min_bytes and stall_s must be non-negative")
        if self.index < 0:
            raise ReproError(f"corruption index must be >= 0, got {self.index}")
        if not 0 <= self.bit < 64:
            raise ReproError(f"bit must be in [0, 64), got {self.bit}")
        if self.rank is not None and self.rank < 0:
            raise ReproError(f"rank must be >= 0, got {self.rank}")
        if self.kind == "rank_crash" and self.rank is None:
            raise ReproError("rank_crash faults must name the rank that dies")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "count": self.count,
            "phase": self.phase,
            "min_bytes": self.min_bytes,
            "stall_s": self.stall_s,
            "target": self.target,
            "index": self.index,
            "bit": self.bit,
            "value": self.value,
            "rank": self.rank,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        try:
            return cls(
                kind=str(payload["kind"]),
                at=int(payload.get("at", 0)),
                count=int(payload.get("count", 1)),
                phase=payload.get("phase"),
                min_bytes=int(payload.get("min_bytes", 0)),
                stall_s=float(payload.get("stall_s", 0.0)),
                target=payload.get("target"),
                index=int(payload.get("index", 0)),
                bit=int(payload.get("bit", 0)),
                value=float(payload.get("value", -1.0)),
                rank=(
                    None if payload.get("rank") is None
                    else int(payload["rank"])
                ),
            )
        except KeyError as exc:
            raise ReproError(f"fault spec missing key: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of planned faults (plus the seed that made it)."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __len__(self) -> int:
        return len(self.faults)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        faults = payload.get("faults")
        if not isinstance(faults, list):
            raise ReproError("fault plan needs a 'faults' list")
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in faults),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_json_file(cls, path: PathLike) -> "FaultPlan":
        path = Path(path)
        if not path.exists():
            raise ReproError(f"fault plan file not found: {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ReproError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save_json(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def seeded_random(
        cls,
        seed: int,
        num_faults: int = 4,
        kinds: Sequence[str] = ("oom", "kernel", "stream"),
        max_index: int = 200,
        phases: Sequence[Optional[str]] = (None,),
    ) -> "FaultPlan":
        """Generate a deterministic chaos plan from *seed*."""
        rng = make_rng(seed, "fault_plan")
        faults = []
        for _ in range(num_faults):
            kind = str(rng.choice(list(kinds)))
            phase = phases[int(rng.integers(0, len(phases)))]
            spec = FaultSpec(
                kind=kind,
                at=int(rng.integers(0, max_index)),
                count=int(rng.integers(1, 3)),
                phase=phase,
                stall_s=0.01 if kind == "transfer_stall" else 0.0,
            )
            faults.append(spec)
        return cls(faults=tuple(faults), seed=seed)


@dataclass
class FaultLogEntry:
    """One fault that actually fired."""

    kind: str
    op_index: int
    phase: Optional[str]
    detail: str


class FaultInjector:
    """Counts device operations and fires the faults a plan schedules.

    Install with :func:`install_fault_injector` (or assign to
    ``device.fault_injector``); the device and stream layers consult it
    on every allocation, kernel launch, and transfer.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # one counter per (kind, phase-filter) so specs with a phase
        # filter count only matching operations
        self._counters: Dict[Tuple[str, Optional[str]], int] = {}
        # corruption counters are keyed (kind, target-filter, phase-filter)
        # so ``at=N`` indexes exposures of one specific structure
        self._corruption_counters: Dict[
            Tuple[str, Optional[str], Optional[str]], int
        ] = {}
        self.log: List[FaultLogEntry] = []

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._corruption_counters.clear()
        self.log.clear()

    @property
    def faults_fired(self) -> int:
        return len(self.log)

    def fired_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.log:
            out[entry.kind] = out.get(entry.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    def _tick(self, kind: str, phase: Optional[str]) -> List[Tuple[FaultSpec, int]]:
        """Advance counters for *kind* at *phase*; return firing specs."""
        fired: List[Tuple[FaultSpec, int]] = []
        keys = {(kind, None)}
        if phase is not None:
            keys.add((kind, phase))
        for key in keys:
            index = self._counters.get(key, 0)
            self._counters[key] = index + 1
            for spec in self.plan.faults:
                if spec.kind != kind or spec.phase != key[1]:
                    continue
                if spec.at <= index < spec.at + spec.count:
                    fired.append((spec, index))
        return fired

    def _record(self, spec: FaultSpec, index: int, phase: Optional[str],
                detail: str) -> None:
        self.log.append(
            FaultLogEntry(kind=spec.kind, op_index=index, phase=phase,
                          detail=detail)
        )

    # ------------------------------------------------------------------
    # hooks called by the device layers
    # ------------------------------------------------------------------
    def on_allocate(self, nbytes: int) -> None:
        """Called by ``Device.allocate`` before reserving memory."""
        for spec, index in self._tick("oom", None):
            if nbytes < spec.min_bytes:
                continue
            self._record(spec, index, None, f"allocate {nbytes} B")
            raise InjectedMemoryFault(
                f"injected OOM at allocation #{index} ({nbytes} bytes)"
            )

    def on_kernel(self, name: str, phase: Optional[str], nbytes: int) -> None:
        """Called by ``Device.execute`` before running a kernel body."""
        for kind in ("kernel", "oom"):
            for spec, index in self._tick(kind, phase):
                if kind == "oom" and nbytes < spec.min_bytes:
                    continue
                self._record(spec, index, phase, f"kernel {name!r}")
                if kind == "oom":
                    raise InjectedMemoryFault(
                        f"injected OOM at kernel #{index} {name!r} "
                        f"({nbytes} bytes of scratch)"
                    )
                raise InjectedKernelFault(
                    f"injected launch failure at kernel #{index} {name!r}"
                )

    def on_transfer(self, nbytes: int, direction: str) -> float:
        """Called by ``Device.charge_transfer``; returns extra stall seconds."""
        stall = 0.0
        for spec, index in self._tick("transfer_stall", None):
            stall += spec.stall_s
            self._record(
                spec, index, None, f"{direction} {nbytes} B stalled {spec.stall_s}s"
            )
        return stall

    def on_stream_launch(self, name: str, phase: Optional[str]) -> None:
        """Called by ``Stream.launch`` before enqueueing a kernel."""
        for spec, index in self._tick("stream", phase):
            self._record(spec, index, phase, f"stream kernel {name!r}")
            raise InjectedStreamFault(
                f"injected stream failure at launch #{index} {name!r}"
            )

    # ------------------------------------------------------------------
    # silent corruption
    # ------------------------------------------------------------------
    def _tick_corruption(
        self, kind: str, target: str, phase: Optional[str]
    ) -> List[Tuple[FaultSpec, int]]:
        """Advance corruption counters for (*kind*, *target*, *phase*)."""
        fired: List[Tuple[FaultSpec, int]] = []
        targets = {None, target}
        phases = {None, phase} if phase is not None else {None}
        for tgt in targets:
            for phs in phases:
                key = (kind, tgt, phs)
                index = self._corruption_counters.get(key, 0)
                self._corruption_counters[key] = index + 1
                for spec in self.plan.faults:
                    if spec.kind != kind or spec.target != tgt or spec.phase != phs:
                        continue
                    if spec.at <= index < spec.at + spec.count:
                        fired.append((spec, index))
        return fired

    @staticmethod
    def _corrupt_array(spec: FaultSpec, array: np.ndarray) -> str:
        """Apply one corruption in place; return a log detail string."""
        flat = array.reshape(-1)
        element = spec.index % flat.size
        if spec.kind == "bitflip":
            bit = spec.bit % (array.itemsize * 8)
            raw = flat.view(np.uint8)
            byte = element * array.itemsize + bit // 8
            raw[byte] ^= np.uint8(1 << (bit % 8))
            return f"flipped bit {bit} of element {element}"
        old = flat[element]
        flat[element] = np.asarray(spec.value).astype(array.dtype)
        return f"element {element}: {old!r} -> {flat[element]!r}"

    def on_corruptible(
        self, tag: str, array: np.ndarray, phase: Optional[str] = None
    ) -> bool:
        """Called when a corruptible structure is exposed to the injector.

        Structures are exposed by the integrity sites in the partitioner
        (after every blockmodel rebuild).  Any scheduled ``bitflip`` /
        ``value_corrupt`` fault matching *tag*/*phase* mutates *array*
        **in place and silently** — no exception, no visible trace except
        the injector log.  Returns ``True`` if the array was corrupted.
        """
        corrupted = False
        if array.size == 0:
            return corrupted
        for kind in CORRUPTION_KINDS:
            for spec, index in self._tick_corruption(kind, tag, phase):
                detail = self._corrupt_array(spec, array)
                self._record(spec, index, phase, f"{tag}: {detail}")
                corrupted = True
        return corrupted


def install_fault_injector(device, plan: FaultPlan) -> FaultInjector:
    """Attach a fresh injector for *plan* to *device* and return it."""
    injector = FaultInjector(plan)
    device.fault_injector = injector
    return injector
