"""Retry policies with exponential backoff + jitter, and run-level stats.

:func:`with_retries` re-executes an operation that failed with a
*retryable* error (device faults by default).  Attempts are counted, the
sleep between attempts grows exponentially with seeded jitter, and a
shared :class:`FaultBudget` can cap the total number of faults a whole
run is allowed to absorb, so a fault storm fails fast instead of
retrying forever.

Determinism note: the operation callback receives the attempt number and
must rebuild any consumed state (notably RNG generators) itself — a
NumPy ``Generator`` partially consumed by a faulted attempt must *not*
be reused, or retried runs diverge from fault-free ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

import numpy as np

from ..errors import DeviceError, RetryExhaustedError
from ..rng import make_rng

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a fault-prone operation.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included); must be >= 1.
    base_delay_s:
        Backoff before the first retry; attempt ``k`` waits
        ``base_delay_s * backoff_factor**(k-1)`` (capped at
        ``max_delay_s``) scaled by ``1 ± jitter``.
    jitter:
        Relative jitter in ``[0, 1)`` drawn from a seeded stream, so even
        the sleep sequence is reproducible.
    retry_on:
        Exception classes considered transient.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    backoff_factor: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.1
    retry_on: Tuple[type, ...] = (DeviceError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"jitter must lie in [0, 1), got {self.jitter}")

    def delay_for_attempt(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff (seconds) after failed attempt *attempt* (1-based)."""
        delay = min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class FaultBudget:
    """A run-wide cap on absorbed faults, shared across retry sites."""

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError(f"fault budget must be >= 0, got {limit}")
        self.limit = limit
        self.consumed = 0

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.consumed)

    def consume(self, error: Exception) -> None:
        """Account one absorbed fault; raise when the budget is blown."""
        self.consumed += 1
        if self.consumed > self.limit:
            raise RetryExhaustedError(
                f"run fault budget of {self.limit} exhausted "
                f"(last fault: {error})",
                last_error=error,
                attempts=self.consumed,
            )


@dataclass
class ResilienceStats:
    """What the resilience machinery did during one run.

    Surfaced on :class:`~repro.core.result.PartitionResult` so callers
    (and the CLI) can see how bumpy the ride was.
    """

    faults_absorbed: int = 0
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    degradations: List[str] = field(default_factory=list)
    checkpoints_written: int = 0
    resumed_from: Optional[str] = None
    backoff_s: float = 0.0

    def record_fault(self, error: Exception) -> None:
        self.faults_absorbed += 1
        kind = type(error).__name__
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1

    def record_degradation(self, description: str) -> None:
        self.degradations.append(description)

    def to_dict(self) -> dict:
        return {
            "faults_absorbed": self.faults_absorbed,
            "faults_by_kind": dict(self.faults_by_kind),
            "retries": self.retries,
            "degradations": list(self.degradations),
            "checkpoints_written": self.checkpoints_written,
            "resumed_from": self.resumed_from,
            "backoff_s": self.backoff_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ResilienceStats":
        return cls(
            faults_absorbed=int(payload.get("faults_absorbed", 0)),
            faults_by_kind=dict(payload.get("faults_by_kind", {})),
            retries=int(payload.get("retries", 0)),
            degradations=list(payload.get("degradations", [])),
            checkpoints_written=int(payload.get("checkpoints_written", 0)),
            resumed_from=payload.get("resumed_from"),
            backoff_s=float(payload.get("backoff_s", 0.0)),
        )


def with_retries(
    operation: Callable[[int], T],
    policy: RetryPolicy,
    *,
    seed: int = 0,
    label: str = "operation",
    stats: Optional[ResilienceStats] = None,
    budget: Optional[FaultBudget] = None,
    sleep: Callable[[float], None] = time.sleep,
    logger=None,
    obs=None,
) -> T:
    """Run ``operation(attempt)`` until it succeeds or the policy gives up.

    *operation* receives the 0-based attempt number so it can rebuild
    per-attempt state (fresh RNG generators, scratch buffers).  Raises
    :class:`RetryExhaustedError` carrying the final attempt's error when
    every attempt failed, and propagates immediately when the shared
    *budget* is exhausted.  Non-retryable exceptions propagate untouched.
    *obs* (an :class:`~repro.obs.Observability`, duck-typed to avoid an
    import cycle) gets fault/retry counters and instant trace markers.
    """
    jitter_rng = make_rng(seed, "retry_jitter", label)
    last_error: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        try:
            return operation(attempt)
        except policy.retry_on as exc:  # type: ignore[misc]
            last_error = exc
            if stats is not None:
                stats.record_fault(exc)
            if obs is not None:
                obs.count(
                    "resilience_faults_total",
                    help="device faults absorbed by retry sites",
                )
                obs.instant(
                    "fault", "resilience",
                    label=label, kind=type(exc).__name__, attempt=attempt,
                )
            if budget is not None:
                budget.consume(exc)  # may raise RetryExhaustedError
            if attempt + 1 >= policy.max_attempts:
                break
            if stats is not None:
                stats.retries += 1
            if obs is not None:
                obs.count(
                    "resilience_retries_total",
                    help="retries performed after absorbed faults",
                )
            delay = policy.delay_for_attempt(attempt + 1, jitter_rng)
            if logger is not None:
                logger.warning(
                    "%s failed (attempt %d/%d): %s; retrying in %.3fs",
                    label, attempt + 1, policy.max_attempts, exc, delay,
                )
            if delay > 0:
                if stats is not None:
                    stats.backoff_s += delay
                sleep(delay)
    raise RetryExhaustedError(
        f"{label} failed after {policy.max_attempts} attempts: {last_error}",
        last_error=last_error,
        attempts=policy.max_attempts,
    )
