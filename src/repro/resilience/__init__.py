"""Fault injection, retries, and graceful degradation for long SBP runs.

See ``docs/resilience.md`` for the fault model, the degradation ladder,
and the mid-run checkpoint format this subsystem relies on.
"""

from .faults import (
    COMM_FAULT_KINDS,
    CORRUPTION_KINDS,
    FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultInjector,
    FaultLogEntry,
    FaultPlan,
    FaultSpec,
    InjectedKernelFault,
    InjectedMemoryFault,
    InjectedStreamFault,
    install_fault_injector,
)
from .retry import (
    FaultBudget,
    ResilienceStats,
    RetryPolicy,
    with_retries,
)

__all__ = [
    "COMM_FAULT_KINDS",
    "CORRUPTION_KINDS",
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "FaultInjector",
    "FaultLogEntry",
    "FaultPlan",
    "FaultSpec",
    "InjectedKernelFault",
    "InjectedMemoryFault",
    "InjectedStreamFault",
    "install_fault_injector",
    "FaultBudget",
    "ResilienceStats",
    "RetryPolicy",
    "with_retries",
]
