"""Directed weighted graphs in Compressed Sparse Row form.

:class:`DiGraphCSR` is the canonical graph container of the library.  It
stores *both* the out-adjacency and the in-adjacency in CSR form (six
arrays total), mirroring the data layout GSAP keeps on the GPU: block-merge
and vertex-move ΔMDL computations need to walk incoming and outgoing edges
of a vertex or block with equal efficiency.

The arrays are immutable by convention — partitioners never mutate the
input graph, only the blockmodel derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import GraphValidationError
from ..types import (
    INDEX_DTYPE,
    WEIGHT_DTYPE,
    IndexArray,
    WeightArray,
    as_index_array,
    as_weight_array,
)


@dataclass(frozen=True)
class CSRAdjacency:
    """One direction of adjacency in CSR form.

    Attributes
    ----------
    ptr:
        Offsets array of length ``num_nodes + 1``; row ``i`` spans
        ``nbr[ptr[i]:ptr[i+1]]``.
    nbr:
        Neighbour ids, grouped by row.
    wgt:
        Edge weights aligned with :attr:`nbr`.
    """

    ptr: IndexArray
    nbr: IndexArray
    wgt: WeightArray

    def __post_init__(self) -> None:
        object.__setattr__(self, "ptr", as_index_array(self.ptr))
        object.__setattr__(self, "nbr", as_index_array(self.nbr))
        object.__setattr__(self, "wgt", as_weight_array(self.wgt))

    @property
    def num_rows(self) -> int:
        return len(self.ptr) - 1

    @property
    def num_entries(self) -> int:
        return len(self.nbr)

    def row(self, i: int) -> Tuple[IndexArray, WeightArray]:
        """Neighbour ids and weights of row *i* (views, not copies)."""
        lo, hi = self.ptr[i], self.ptr[i + 1]
        return self.nbr[lo:hi], self.wgt[lo:hi]

    def degree(self, i: int) -> int:
        """Weighted degree of row *i*."""
        lo, hi = self.ptr[i], self.ptr[i + 1]
        return int(self.wgt[lo:hi].sum())

    def degrees(self) -> WeightArray:
        """Weighted degree of every row, vectorized."""
        sums = np.zeros(self.num_rows, dtype=WEIGHT_DTYPE)
        if self.num_entries:
            # np.add.reduceat mishandles empty rows; use a cumulative-sum
            # difference instead, which is branch-free and O(nnz).
            csum = np.concatenate(([0], np.cumsum(self.wgt)))
            sums = csum[self.ptr[1:]] - csum[self.ptr[:-1]]
        return sums.astype(WEIGHT_DTYPE)

    def row_lengths(self) -> IndexArray:
        """Number of stored entries per row."""
        return self.ptr[1:] - self.ptr[:-1]

    def validate(self) -> None:
        """Raise :class:`GraphValidationError` on any CSR invariant breach."""
        if len(self.ptr) < 1:
            raise GraphValidationError("ptr must have at least one element")
        if self.ptr[0] != 0:
            raise GraphValidationError(f"ptr[0] must be 0, got {self.ptr[0]}")
        if np.any(np.diff(self.ptr) < 0):
            raise GraphValidationError("ptr must be non-decreasing")
        if self.ptr[-1] != len(self.nbr):
            raise GraphValidationError(
                f"ptr[-1]={self.ptr[-1]} does not match nnz={len(self.nbr)}"
            )
        if len(self.nbr) != len(self.wgt):
            raise GraphValidationError("nbr and wgt must have equal length")
        if self.num_entries:
            if self.nbr.min() < 0 or self.nbr.max() >= self.num_rows:
                raise GraphValidationError("neighbour id out of range")
            if self.wgt.min() <= 0:
                raise GraphValidationError("edge weights must be positive")


@dataclass(frozen=True)
class DiGraphCSR:
    """A directed weighted graph stored as paired out/in CSR adjacencies.

    Use :func:`repro.graph.builder.build_graph` (or the loaders in
    :mod:`repro.graph.io`) to construct instances; the constructor itself
    only wires pre-built adjacencies together.

    Attributes
    ----------
    out_adj:
        Out-edges: ``out_adj.row(v)`` lists targets of edges ``v -> t``.
    in_adj:
        In-edges: ``in_adj.row(v)`` lists sources of edges ``s -> v``.
    """

    out_adj: CSRAdjacency
    in_adj: CSRAdjacency

    @property
    def num_vertices(self) -> int:
        return self.out_adj.num_rows

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (after duplicate aggregation)."""
        return self.out_adj.num_entries

    @property
    def total_edge_weight(self) -> int:
        return int(self.out_adj.wgt.sum())

    def out_neighbors(self, v: int) -> Tuple[IndexArray, WeightArray]:
        return self.out_adj.row(v)

    def in_neighbors(self, v: int) -> Tuple[IndexArray, WeightArray]:
        return self.in_adj.row(v)

    def out_degrees(self) -> WeightArray:
        return self.out_adj.degrees()

    def in_degrees(self) -> WeightArray:
        return self.in_adj.degrees()

    def degrees(self) -> WeightArray:
        """Total (in + out) weighted degree per vertex."""
        return self.out_degrees() + self.in_degrees()

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(src, dst, weight)`` triples in CSR order."""
        ptr, nbr, wgt = self.out_adj.ptr, self.out_adj.nbr, self.out_adj.wgt
        for v in range(self.num_vertices):
            for k in range(ptr[v], ptr[v + 1]):
                yield v, int(nbr[k]), int(wgt[k])

    def edge_arrays(self) -> Tuple[IndexArray, IndexArray, WeightArray]:
        """Return ``(src, dst, weight)`` arrays covering every edge."""
        ptr = self.out_adj.ptr
        src = np.repeat(
            np.arange(self.num_vertices, dtype=INDEX_DTYPE),
            (ptr[1:] - ptr[:-1]),
        )
        return src, self.out_adj.nbr.copy(), self.out_adj.wgt.copy()

    def validate(self) -> None:
        """Check both adjacencies plus out/in consistency."""
        self.out_adj.validate()
        self.in_adj.validate()
        if self.out_adj.num_rows != self.in_adj.num_rows:
            raise GraphValidationError(
                "out and in adjacencies disagree on vertex count: "
                f"{self.out_adj.num_rows} vs {self.in_adj.num_rows}"
            )
        if self.out_adj.num_entries != self.in_adj.num_entries:
            raise GraphValidationError(
                "out and in adjacencies disagree on edge count: "
                f"{self.out_adj.num_entries} vs {self.in_adj.num_entries}"
            )
        if self.out_adj.wgt.sum() != self.in_adj.wgt.sum():
            raise GraphValidationError("out and in total edge weight differ")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiGraphCSR(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"W={self.total_edge_weight})"
        )
