"""Streaming-graph emulation (the GraphChallenge streaming scenarios).

The HPEC benchmark the paper evaluates on is the *Streaming* Graph
Challenge (Kao et al. 2017): graphs arrive in stages, either as uniform
**edge samples** or as expanding **snowball samples** (neighbourhood
growth from seed vertices), and partitioners are scored after each
stage.  These generators reproduce both arrival orders from a full
graph so the streaming partitioner can be evaluated end to end.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..errors import ConfigError
from ..rng import make_rng
from ..types import INDEX_DTYPE, IndexArray, WeightArray
from .csr import DiGraphCSR

EdgeBatch = Tuple[IndexArray, IndexArray, WeightArray]


def edge_sample_stream(
    graph: DiGraphCSR, num_stages: int, seed: int = 0
) -> Iterator[EdgeBatch]:
    """Uniform edge-sampling arrival: each stage delivers a random
    1/num_stages slice of the edges (GraphChallenge "emerging edges").
    """
    if num_stages < 1:
        raise ConfigError(f"num_stages must be >= 1, got {num_stages}")
    rng = make_rng(seed, "edge_stream")
    src, dst, wgt = graph.edge_arrays()
    order = rng.permutation(len(src))
    for stage in range(num_stages):
        sel = order[stage::num_stages]
        sel.sort()
        yield src[sel], dst[sel], wgt[sel]


def snowball_stream(
    graph: DiGraphCSR,
    num_stages: int,
    seed: int = 0,
    num_seeds: int = 8,
) -> Iterator[EdgeBatch]:
    """Snowball-sampling arrival: vertices join in breadth-first waves
    from random seeds; a stage delivers every edge whose *both* endpoints
    have joined and that was not delivered before.

    Vertices unreachable from the seeds are appended to the final wave,
    so the union of all stages is exactly the input graph.
    """
    if num_stages < 1:
        raise ConfigError(f"num_stages must be >= 1, got {num_stages}")
    rng = make_rng(seed, "snowball_stream")
    n = graph.num_vertices
    src, dst, wgt = graph.edge_arrays()

    # BFS wave index per vertex over the undirected skeleton
    wave = np.full(n, -1, dtype=INDEX_DTYPE)
    if n:
        seeds = rng.choice(n, size=min(num_seeds, n), replace=False)
        wave[seeds] = 0
        frontier = seeds
        level = 0
        while len(frontier):
            level += 1
            nxt: list[np.ndarray] = []
            for v in frontier:
                for nbr, _ in (graph.out_neighbors(int(v)),
                               graph.in_neighbors(int(v))):
                    fresh = nbr[wave[nbr] < 0]
                    if len(fresh):
                        wave[fresh] = level
                        nxt.append(fresh)
            frontier = np.concatenate(nxt) if nxt else np.empty(0, dtype=INDEX_DTYPE)
        wave[wave < 0] = level + 1
        max_wave = int(wave.max())
    else:
        max_wave = 0

    # map waves onto stages: vertex joins at stage floor(wave * stages / (max+1))
    join_stage = (
        (wave * num_stages) // (max_wave + 1) if n else wave
    ).astype(INDEX_DTYPE)
    edge_stage = np.maximum(join_stage[src], join_stage[dst]) if len(src) else src
    for stage in range(num_stages):
        sel = np.flatnonzero(edge_stage == stage)
        yield src[sel], dst[sel], wgt[sel]


def cumulative_graphs(
    batches: Iterator[EdgeBatch], num_vertices: int
) -> Iterator[DiGraphCSR]:
    """Accumulate edge batches into the growing graph after each stage."""
    from .builder import build_graph

    all_src: list[np.ndarray] = []
    all_dst: list[np.ndarray] = []
    all_wgt: list[np.ndarray] = []
    for src, dst, wgt in batches:
        all_src.append(np.asarray(src))
        all_dst.append(np.asarray(dst))
        all_wgt.append(np.asarray(wgt))
        yield build_graph(
            np.concatenate(all_src),
            np.concatenate(all_dst),
            np.concatenate(all_wgt),
            num_vertices=num_vertices,
        )
