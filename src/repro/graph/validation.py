"""Structural validation helpers for graphs and partitions."""

from __future__ import annotations

import numpy as np

from ..errors import GraphValidationError
from ..types import IndexArray, as_index_array
from .csr import DiGraphCSR


def validate_partition(partition: IndexArray, num_vertices: int) -> int:
    """Validate a block-id array and return its block count.

    A valid partition assigns every vertex a block id in ``[0, B)`` where
    ``B = max(partition) + 1``; block ids need not be dense (empty blocks
    are tolerated by the partitioners but flagged here).
    """
    partition = as_index_array(partition)
    if partition.ndim != 1:
        raise GraphValidationError("partition must be one-dimensional")
    if len(partition) != num_vertices:
        raise GraphValidationError(
            f"partition length {len(partition)} != num_vertices {num_vertices}"
        )
    if num_vertices == 0:
        return 0
    if partition.min() < 0:
        raise GraphValidationError("partition contains negative block ids")
    return int(partition.max()) + 1


def partition_is_dense(partition: IndexArray) -> bool:
    """True if every block id in ``[0, max+1)`` is used at least once."""
    partition = as_index_array(partition)
    if len(partition) == 0:
        return True
    b = int(partition.max()) + 1
    return bool(np.all(np.bincount(partition, minlength=b) > 0))


def densify_partition(partition: IndexArray) -> IndexArray:
    """Relabel block ids to remove gaps, preserving relative order."""
    partition = as_index_array(partition)
    if len(partition) == 0:
        return partition.copy()
    used = np.unique(partition)
    remap = np.full(int(used.max()) + 1, -1, dtype=partition.dtype)
    remap[used] = np.arange(len(used), dtype=partition.dtype)
    return remap[partition]


def graph_summary(graph: DiGraphCSR) -> dict:
    """Cheap descriptive statistics used in logs and reports."""
    degrees = graph.degrees()
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "total_edge_weight": graph.total_edge_weight,
        "max_degree": int(degrees.max()) if len(degrees) else 0,
        "mean_degree": float(degrees.mean()) if len(degrees) else 0.0,
        "num_self_loops": int(
            np.sum(
                graph.edge_arrays()[0] == graph.edge_arrays()[1]
            )
        ),
    }


def assert_same_vertex_count(graph: DiGraphCSR, partition: IndexArray) -> None:
    """Raise unless *partition* covers exactly *graph*'s vertices."""
    if len(partition) != graph.num_vertices:
        raise GraphValidationError(
            f"partition covers {len(partition)} vertices, graph has "
            f"{graph.num_vertices}"
        )
