"""Graph construction from raw edge lists.

The builder aggregates duplicate edges (summing weights), drops nothing
else — self-loops are legal and meaningful in stochastic blockmodels —
and produces both CSR directions in one pass using stable sorts, the same
strategy Algorithm 2 of the paper uses on the GPU.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import GraphFormatError
from ..types import INDEX_DTYPE, WEIGHT_DTYPE, as_index_array, as_weight_array
from .csr import CSRAdjacency, DiGraphCSR


def _aggregate_edges(
    src: np.ndarray, dst: np.ndarray, wgt: np.ndarray, num_vertices: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort edges by (src, dst) and sum weights of duplicates."""
    if len(src) == 0:
        empty_i = np.empty(0, dtype=INDEX_DTYPE)
        empty_w = np.empty(0, dtype=WEIGHT_DTYPE)
        return empty_i, empty_i.copy(), empty_w
    key = src * num_vertices + dst
    order = np.argsort(key, kind="stable")
    key = key[order]
    wgt = wgt[order]
    boundary = np.empty(len(key), dtype=bool)
    boundary[0] = True
    np.not_equal(key[1:], key[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    unique_key = key[starts]
    summed = np.add.reduceat(wgt, starts)
    return (
        (unique_key // num_vertices).astype(INDEX_DTYPE),
        (unique_key % num_vertices).astype(INDEX_DTYPE),
        summed.astype(WEIGHT_DTYPE),
    )


def _csr_from_sorted(
    rows: np.ndarray, cols: np.ndarray, wgt: np.ndarray, num_vertices: int
) -> CSRAdjacency:
    """Build a CSRAdjacency from edges already sorted by *rows*."""
    counts = np.bincount(rows, minlength=num_vertices).astype(INDEX_DTYPE)
    ptr = np.concatenate(([0], np.cumsum(counts))).astype(INDEX_DTYPE)
    return CSRAdjacency(ptr=ptr, nbr=cols, wgt=wgt)


def build_graph(
    src: Sequence[int] | np.ndarray,
    dst: Sequence[int] | np.ndarray,
    weights: Sequence[int] | np.ndarray | None = None,
    num_vertices: int | None = None,
) -> DiGraphCSR:
    """Build a :class:`DiGraphCSR` from parallel src/dst/weight arrays.

    Duplicate ``(src, dst)`` pairs are merged by summing their weights.

    Parameters
    ----------
    src, dst:
        Edge endpoint arrays (0-based vertex ids).
    weights:
        Optional positive integer weights; defaults to all-ones.
    num_vertices:
        Total vertex count.  Defaults to ``max(src, dst) + 1``; pass it
        explicitly when the graph may contain isolated trailing vertices.
    """
    src_arr = as_index_array(src)
    dst_arr = as_index_array(dst)
    if src_arr.shape != dst_arr.shape or src_arr.ndim != 1:
        raise GraphFormatError("src and dst must be equal-length 1-D arrays")
    if weights is None:
        wgt_arr = np.ones(len(src_arr), dtype=WEIGHT_DTYPE)
    else:
        wgt_arr = as_weight_array(weights)
        if wgt_arr.shape != src_arr.shape:
            raise GraphFormatError("weights must align with src/dst")
        if len(wgt_arr) and wgt_arr.min() <= 0:
            raise GraphFormatError("edge weights must be positive")
    if len(src_arr):
        lo = min(int(src_arr.min()), int(dst_arr.min()))
        hi = max(int(src_arr.max()), int(dst_arr.max()))
        if lo < 0:
            raise GraphFormatError("vertex ids must be non-negative")
    else:
        hi = -1
    if num_vertices is None:
        num_vertices = hi + 1
    elif hi >= num_vertices:
        raise GraphFormatError(
            f"vertex id {hi} exceeds num_vertices={num_vertices}"
        )
    num_vertices = max(int(num_vertices), 0)

    s, d, w = _aggregate_edges(src_arr, dst_arr, wgt_arr, max(num_vertices, 1))
    out_adj = _csr_from_sorted(s, d, w, num_vertices)

    # The in-adjacency re-sorts by (dst, src); the aggregate above already
    # deduplicated, so a stable argsort on dst suffices.
    order = np.argsort(d, kind="stable")
    in_adj = _csr_from_sorted(d[order], s[order], w[order], num_vertices)

    graph = DiGraphCSR(out_adj=out_adj, in_adj=in_adj)
    graph.validate()
    return graph


def from_edge_iterable(
    edges: Iterable[Tuple[int, int] | Tuple[int, int, int]],
    num_vertices: int | None = None,
) -> DiGraphCSR:
    """Build a graph from an iterable of ``(src, dst[, weight])`` tuples."""
    srcs: list[int] = []
    dsts: list[int] = []
    wgts: list[int] = []
    for edge in edges:
        if len(edge) == 2:
            s, d = edge  # type: ignore[misc]
            w = 1
        elif len(edge) == 3:
            s, d, w = edge  # type: ignore[misc]
        else:
            raise GraphFormatError(f"edge tuple of length {len(edge)} not supported")
        srcs.append(int(s))
        dsts.append(int(d))
        wgts.append(int(w))
    return build_graph(srcs, dsts, wgts, num_vertices=num_vertices)


def from_networkx(nx_graph, weight_attr: str = "weight") -> DiGraphCSR:
    """Convert a :mod:`networkx` (Di)Graph with integer node labels.

    Nodes must be integers in ``[0, n)``.  Undirected graphs are
    symmetrized (each undirected edge contributes both directions).
    """
    import networkx as nx

    n = nx_graph.number_of_nodes()
    nodes = set(nx_graph.nodes)
    if nodes != set(range(n)):
        raise GraphFormatError("networkx graph must use integer labels 0..n-1")
    srcs, dsts, wgts = [], [], []
    for u, v, data in nx_graph.edges(data=True):
        w = int(data.get(weight_attr, 1))
        srcs.append(u)
        dsts.append(v)
        wgts.append(w)
        if not isinstance(nx_graph, nx.DiGraph):
            srcs.append(v)
            dsts.append(u)
            wgts.append(w)
    return build_graph(srcs, dsts, wgts, num_vertices=n)
