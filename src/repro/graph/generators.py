"""Degree-corrected stochastic-blockmodel graph generation.

The HPEC SBP Challenge graphs (paper Table 1) are synthetic samples from a
degree-corrected SBM (Karrer & Newman 2011): edge counts between blocks are
Poisson with rates set by a block-interaction matrix, and endpoints inside
a block are chosen proportionally to per-vertex degree-correction weights
drawn from a heavy-tailed distribution.

Two knobs reproduce the four SBPC categories:

``block_overlap``
    Fraction of edge mass placed *between* blocks (off-diagonal of the
    interaction matrix).  "Low" ≈ 0.1, "High" ≈ 0.4.
``block_size_variation``
    Heterogeneity of block sizes, realised as the concentration of the
    Dirichlet prior on block proportions.  "Low" → near-equal blocks,
    "High" → a few dominant blocks plus many small ones.

The generator is fully vectorized: it samples the total edge count, assigns
each edge a block pair by one multinomial draw, then places endpoints with
per-block inverse-CDF lookups (one ``searchsorted`` per block).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigError
from ..rng import make_rng
from ..types import FLOAT_DTYPE, INDEX_DTYPE, IndexArray
from .builder import build_graph
from .csr import DiGraphCSR

#: Dirichlet concentrations realising the "size variation" axis.
LOW_VARIATION_ALPHA = 20.0
HIGH_VARIATION_ALPHA = 2.0

#: Off-diagonal edge-mass fractions realising the "overlap" axis.
LOW_OVERLAP = 0.10
HIGH_OVERLAP = 0.40


def default_num_blocks(num_vertices: int) -> int:
    """Block count used by the SBPC datasets, ``B ≈ 0.97 · V^0.352``.

    Fitted to Table 1 (1K→11, 5K→19, 20K→32, 50K→44, 200K→71, 1M→125);
    exact table values are reproduced for the table's sizes.
    """
    table = {1_000: 11, 5_000: 19, 20_000: 32, 50_000: 44, 200_000: 71, 1_000_000: 125}
    if num_vertices in table:
        return table[num_vertices]
    return max(2, round(0.97 * num_vertices**0.352))


def default_average_degree(num_vertices: int) -> float:
    """Average (out-)degree matching Table 1's |E|/|V| per size.

    Table 1 shows ≈8.0 at 1K, ≈10.2 at 5K and ≈23.7 from 20K upward; we
    interpolate log-linearly through those anchor points and saturate
    outside them.
    """
    anchors = [(1_000, 8.0), (5_000, 10.2), (20_000, 23.7)]
    if num_vertices <= anchors[0][0]:
        return anchors[0][1]
    if num_vertices >= anchors[-1][0]:
        return anchors[-1][1]
    for (x0, y0), (x1, y1) in zip(anchors, anchors[1:]):
        if x0 <= num_vertices <= x1:
            t = (math.log(num_vertices) - math.log(x0)) / (
                math.log(x1) - math.log(x0)
            )
            return y0 + t * (y1 - y0)
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class SBMParams:
    """Full parameterisation of one generated DC-SBM graph."""

    num_vertices: int
    num_blocks: int
    average_degree: float
    block_overlap: float
    block_size_variation_alpha: float
    degree_exponent: float = 2.5
    min_degree_weight: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vertices < 1:
            raise ConfigError(f"num_vertices must be >= 1, got {self.num_vertices}")
        if not (1 <= self.num_blocks <= self.num_vertices):
            raise ConfigError(
                f"num_blocks must be in [1, num_vertices], got {self.num_blocks}"
            )
        if self.average_degree <= 0:
            raise ConfigError(f"average_degree must be > 0, got {self.average_degree}")
        if not (0.0 <= self.block_overlap < 1.0):
            raise ConfigError(
                f"block_overlap must be in [0, 1), got {self.block_overlap}"
            )
        if self.block_size_variation_alpha <= 0:
            raise ConfigError("block_size_variation_alpha must be > 0")
        if self.degree_exponent <= 1.0:
            raise ConfigError("degree_exponent must exceed 1")


def _sample_block_sizes(params: SBMParams, rng: np.random.Generator) -> IndexArray:
    """Sample block sizes from a Dirichlet prior, each block non-empty."""
    n, b = params.num_vertices, params.num_blocks
    proportions = rng.dirichlet(np.full(b, params.block_size_variation_alpha))
    sizes = np.maximum(1, np.floor(proportions * n).astype(INDEX_DTYPE))
    # Repair the rounding drift by adding/removing from the largest blocks.
    drift = int(n - sizes.sum())
    order = np.argsort(-sizes)
    i = 0
    while drift != 0:
        j = order[i % b]
        if drift > 0:
            sizes[j] += 1
            drift -= 1
        elif sizes[j] > 1:
            sizes[j] -= 1
            drift += 1
        i += 1
    return sizes


def _interaction_matrix(
    params: SBMParams, rng: np.random.Generator
) -> Tuple[np.ndarray, IndexArray]:
    """Edge-mass distribution over block pairs, diagonal-dominant.

    Row/column mass is proportional to block size so larger blocks carry
    proportionally more edges, matching the SBPC construction.
    """
    b = params.num_blocks
    sizes = _sample_block_sizes(params, rng).astype(FLOAT_DTYPE)
    weight = sizes / sizes.sum()
    omega = np.outer(weight, weight)
    if b == 1:
        return np.ones((1, 1)), sizes.astype(INDEX_DTYPE)  # single block: all mass intra
    off = omega.copy()
    np.fill_diagonal(off, 0.0)
    off_sum = off.sum()
    diag = np.diag(omega).copy()
    diag_sum = diag.sum()
    # Rescale so the off-diagonal carries exactly `block_overlap` mass.
    matrix = np.zeros_like(omega)
    if off_sum > 0:
        matrix += off * (params.block_overlap / off_sum)
    np.fill_diagonal(matrix, diag * ((1.0 - params.block_overlap) / diag_sum))
    return matrix, sizes.astype(INDEX_DTYPE)


def _degree_weights(
    sizes: IndexArray, params: SBMParams, rng: np.random.Generator
) -> Tuple[np.ndarray, IndexArray, IndexArray]:
    """Per-vertex Pareto degree-correction weights, grouped by block.

    Returns ``(theta, block_of, block_start)`` where vertices are laid out
    contiguously per block: block ``k`` owns ids
    ``block_start[k] .. block_start[k+1]-1``.
    """
    n = int(sizes.sum())
    theta = (
        rng.pareto(params.degree_exponent - 1.0, size=n) + params.min_degree_weight
    )
    block_of = np.repeat(np.arange(len(sizes), dtype=INDEX_DTYPE), sizes)
    block_start = np.concatenate(([0], np.cumsum(sizes))).astype(INDEX_DTYPE)
    return theta, block_of, block_start


def generate_dcsbm(params: SBMParams) -> Tuple[DiGraphCSR, IndexArray]:
    """Sample one directed DC-SBM graph.

    Returns
    -------
    (graph, truth):
        The graph in CSR form and the ground-truth block id of every
        vertex.  Vertex ids are shuffled so block membership is not
        recoverable from id order.
    """
    rng = make_rng(params.seed, "dcsbm", params.num_vertices, params.num_blocks)
    matrix, sizes = _interaction_matrix(params, rng)
    theta, block_of, block_start = _degree_weights(sizes, params, rng)
    n, b = params.num_vertices, params.num_blocks

    total_edges = max(
        n,
        int(rng.poisson(params.average_degree * n)),
    )
    # One multinomial draw assigns every edge a (src_block, dst_block) pair.
    pair_counts = rng.multinomial(total_edges, matrix.reshape(-1)).reshape(b, b)

    # Per-block inverse-CDF tables for endpoint placement.
    cum_theta: list[np.ndarray] = []
    for k in range(b):
        t = theta[block_start[k] : block_start[k + 1]]
        c = np.cumsum(t)
        cum_theta.append(c / c[-1])

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    # Row pass: all edges whose source lives in block `a` share one
    # searchsorted; likewise per destination block.  B <= a few hundred so
    # this loop is tiny next to the vectorized body.
    row_counts = pair_counts.sum(axis=1)
    col_order_counts = pair_counts  # (a, c) layout
    for a in range(b):
        m = int(row_counts[a])
        if m == 0:
            continue
        u = rng.random(m)
        local = np.searchsorted(cum_theta[a], u, side="left")
        src_parts.append(block_start[a] + local)
        # Destinations for these edges, grouped: counts per dst block.
        dst_for_a: list[np.ndarray] = []
        for c in range(b):
            mc = int(col_order_counts[a, c])
            if mc == 0:
                continue
            u2 = rng.random(mc)
            local2 = np.searchsorted(cum_theta[c], u2, side="left")
            dst_for_a.append(block_start[c] + local2)
        dst_parts.append(np.concatenate(dst_for_a))

    if src_parts:
        src = np.concatenate(src_parts).astype(INDEX_DTYPE)
        dst = np.concatenate(dst_parts).astype(INDEX_DTYPE)
    else:  # pragma: no cover - degenerate empty graph
        src = np.empty(0, dtype=INDEX_DTYPE)
        dst = np.empty(0, dtype=INDEX_DTYPE)

    # Shuffle vertex ids so the truth is not encoded in the ordering.
    perm = rng.permutation(n).astype(INDEX_DTYPE)
    truth = np.empty(n, dtype=INDEX_DTYPE)
    truth[perm] = block_of
    graph = build_graph(perm[src], perm[dst], num_vertices=n)
    return graph, truth


def generate_category_graph(
    num_vertices: int,
    overlap: str,
    size_variation: str,
    seed: int = 0,
    num_blocks: int | None = None,
    average_degree: float | None = None,
) -> Tuple[DiGraphCSR, IndexArray]:
    """Generate one SBPC-category graph (paper Table 1).

    Parameters
    ----------
    overlap:
        ``"low"`` or ``"high"`` block overlap.
    size_variation:
        ``"low"`` or ``"high"`` block-size variation.
    """
    overlap = overlap.lower()
    size_variation = size_variation.lower()
    if overlap not in ("low", "high"):
        raise ConfigError(f"overlap must be 'low' or 'high', got {overlap!r}")
    if size_variation not in ("low", "high"):
        raise ConfigError(
            f"size_variation must be 'low' or 'high', got {size_variation!r}"
        )
    params = SBMParams(
        num_vertices=num_vertices,
        num_blocks=num_blocks or default_num_blocks(num_vertices),
        average_degree=average_degree or default_average_degree(num_vertices),
        block_overlap=LOW_OVERLAP if overlap == "low" else HIGH_OVERLAP,
        block_size_variation_alpha=(
            LOW_VARIATION_ALPHA if size_variation == "low" else HIGH_VARIATION_ALPHA
        ),
        seed=seed,
    )
    return generate_dcsbm(params)
