"""Graph and ground-truth file IO in the HPEC GraphChallenge format.

The GraphChallenge SBP datasets ship as tab-separated edge lists with
**1-based** vertex ids::

    <src>\t<dst>\t<weight>

and ground-truth partition files::

    <vertex>\t<block>

Both loaders tolerate comment lines (``#``/``%``) and blank lines, and
both writers round-trip exactly.
"""

from __future__ import annotations

import gzip
import io
import os
from pathlib import Path
from typing import IO, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from ..types import INDEX_DTYPE, IndexArray, as_index_array
from .builder import build_graph
from .csr import DiGraphCSR

PathLike = Union[str, os.PathLike]


def _open_text(path: PathLike, mode: str = "rt") -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def _parse_rows(stream: IO[str], expected_cols: Tuple[int, ...], what: str):
    rows = []
    for lineno, line in enumerate(stream, start=1):
        text = line.strip()
        if not text or text.startswith(("#", "%")):
            continue
        parts = text.replace(",", "\t").split()
        if len(parts) not in expected_cols:
            raise GraphFormatError(
                f"{what}: line {lineno} has {len(parts)} fields, "
                f"expected one of {expected_cols}: {text!r}"
            )
        try:
            rows.append(tuple(int(p) for p in parts))
        except ValueError as exc:
            raise GraphFormatError(
                f"{what}: line {lineno} is not integer-valued: {text!r}"
            ) from exc
    return rows


def load_edge_list(
    path: PathLike,
    one_based: bool = True,
    num_vertices: int | None = None,
) -> DiGraphCSR:
    """Load a GraphChallenge-style TSV edge list into a :class:`DiGraphCSR`.

    Parameters
    ----------
    path:
        File path; ``.gz`` suffixes are decompressed transparently.
    one_based:
        GraphChallenge files use 1-based ids (the default).  Pass ``False``
        for 0-based lists.
    num_vertices:
        Optional explicit vertex count (after id rebasing).
    """
    with _open_text(path) as stream:
        rows = _parse_rows(stream, (2, 3), f"edge list {path}")
    if not rows:
        return build_graph([], [], num_vertices=num_vertices or 0)
    arr = np.asarray(rows, dtype=INDEX_DTYPE)
    src = arr[:, 0]
    dst = arr[:, 1]
    wgt = arr[:, 2] if arr.shape[1] == 3 else None
    if one_based:
        if src.min() < 1 or dst.min() < 1:
            raise GraphFormatError(
                f"edge list {path}: expected 1-based ids but found id < 1 "
                "(pass one_based=False for 0-based files)"
            )
        src = src - 1
        dst = dst - 1
    return build_graph(src, dst, wgt, num_vertices=num_vertices)


def save_edge_list(
    graph: DiGraphCSR, path: PathLike, one_based: bool = True
) -> None:
    """Write *graph* as a TSV edge list (src, dst, weight)."""
    offset = 1 if one_based else 0
    src, dst, wgt = graph.edge_arrays()
    with _open_text(path, "wt") as stream:
        for s, d, w in zip(src + offset, dst + offset, wgt):
            stream.write(f"{s}\t{d}\t{w}\n")


def load_truth_partition(
    path: PathLike,
    num_vertices: int | None = None,
    one_based: bool = True,
) -> IndexArray:
    """Load a ground-truth partition file into a 0-based block-id array.

    Returns an array ``truth`` with ``truth[v]`` = block of vertex ``v``.
    Vertices absent from the file get block ``-1`` (unassigned).
    """
    with _open_text(path) as stream:
        rows = _parse_rows(stream, (2,), f"truth partition {path}")
    if not rows:
        return np.empty(0, dtype=INDEX_DTYPE)
    arr = np.asarray(rows, dtype=INDEX_DTYPE)
    verts, blocks = arr[:, 0], arr[:, 1]
    if one_based:
        verts = verts - 1
        blocks = blocks - 1
    if verts.min() < 0 or blocks.min() < 0:
        raise GraphFormatError(f"truth partition {path}: negative id after rebasing")
    n = int(num_vertices if num_vertices is not None else verts.max() + 1)
    if verts.max() >= n:
        raise GraphFormatError(
            f"truth partition {path}: vertex id {verts.max()} >= n={n}"
        )
    truth = np.full(n, -1, dtype=INDEX_DTYPE)
    truth[verts] = blocks
    return truth


def save_truth_partition(
    partition: IndexArray, path: PathLike, one_based: bool = True
) -> None:
    """Write a block-id array in GraphChallenge truth format."""
    partition = as_index_array(partition)
    offset = 1 if one_based else 0
    with _open_text(path, "wt") as stream:
        for v, b in enumerate(partition):
            stream.write(f"{v + offset}\t{int(b) + offset}\n")


def load_graph_with_truth(
    edge_path: PathLike, truth_path: PathLike, one_based: bool = True
) -> Tuple[DiGraphCSR, IndexArray]:
    """Load an edge list and its ground-truth partition together."""
    graph = load_edge_list(edge_path, one_based=one_based)
    truth = load_truth_partition(
        truth_path, num_vertices=graph.num_vertices, one_based=one_based
    )
    return graph, truth


def edge_list_to_string(graph: DiGraphCSR, one_based: bool = True) -> str:
    """Render *graph* as a TSV edge-list string (mainly for tests)."""
    buf = io.StringIO()
    offset = 1 if one_based else 0
    src, dst, wgt = graph.edge_arrays()
    for s, d, w in zip(src + offset, dst + offset, wgt):
        buf.write(f"{s}\t{d}\t{w}\n")
    return buf.getvalue()


# ----------------------------------------------------------------------
# additional interchange formats
# ----------------------------------------------------------------------
def load_snap_edge_list(path: PathLike, num_vertices: int | None = None) -> DiGraphCSR:
    """Load a SNAP-style edge list: 0-based ``src dst`` pairs, ``#`` comments.

    The Stanford SNAP collection (paper ref. [50]) distributes graphs in
    this form; weights default to 1.
    """
    return load_edge_list(path, one_based=False, num_vertices=num_vertices)


def load_matrix_market(path: PathLike) -> DiGraphCSR:
    """Load a MatrixMarket ``coordinate`` file as a directed graph.

    Supports ``general`` (directed) and ``symmetric`` (each off-diagonal
    entry expanded to both directions) matrices with integer or real
    weights (reals are rounded to the nearest positive integer, floor 1,
    since blockmodels count edges).
    """
    import scipy.io

    matrix = scipy.io.mmread(str(path)).tocoo()
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphFormatError(
            f"matrix market file {path}: adjacency must be square, "
            f"got {matrix.shape}"
        )
    weights = np.asarray(np.rint(np.abs(matrix.data)), dtype=np.int64)
    weights[weights < 1] = 1
    from .builder import build_graph

    return build_graph(
        matrix.row.astype(np.int64),
        matrix.col.astype(np.int64),
        weights,
        num_vertices=matrix.shape[0],
    )


def save_matrix_market(graph: DiGraphCSR, path: PathLike, comment: str = "") -> None:
    """Write *graph* as a MatrixMarket ``coordinate integer general`` file."""
    src, dst, wgt = graph.edge_arrays()
    n = graph.num_vertices
    with _open_text(path, "wt") as stream:
        stream.write("%%MatrixMarket matrix coordinate integer general\n")
        if comment:
            for line in comment.splitlines():
                stream.write(f"% {line}\n")
        stream.write(f"{n} {n} {len(src)}\n")
        for s, d, w in zip(src + 1, dst + 1, wgt):
            stream.write(f"{s} {d} {w}\n")
