"""Graph transformations used around partitioning pipelines.

Real-world inputs rarely arrive as clean SBPC files: they need
symmetrization, component extraction, or relabelling before SBP is
meaningful.  All transforms return new graphs (inputs are never mutated)
and, where vertex ids change, also return the id mapping so partitions
can be projected back.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GraphValidationError
from ..types import INDEX_DTYPE, IndexArray
from .builder import build_graph
from .csr import DiGraphCSR


def reverse(graph: DiGraphCSR) -> DiGraphCSR:
    """Reverse every edge (the transpose graph)."""
    src, dst, wgt = graph.edge_arrays()
    return build_graph(dst, src, wgt, num_vertices=graph.num_vertices)


def symmetrize(graph: DiGraphCSR) -> DiGraphCSR:
    """Add the reverse of every edge (weights add where both exist)."""
    src, dst, wgt = graph.edge_arrays()
    return build_graph(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        np.concatenate([wgt, wgt]),
        num_vertices=graph.num_vertices,
    )


def remove_self_loops(graph: DiGraphCSR) -> DiGraphCSR:
    """Drop all self-loop edges."""
    src, dst, wgt = graph.edge_arrays()
    keep = src != dst
    return build_graph(
        src[keep], dst[keep], wgt[keep], num_vertices=graph.num_vertices
    )


def induced_subgraph(
    graph: DiGraphCSR, vertices: IndexArray
) -> Tuple[DiGraphCSR, IndexArray]:
    """Subgraph induced by *vertices* (edges with both endpoints kept).

    Returns ``(subgraph, kept)`` where subgraph vertex ``i`` corresponds
    to original vertex ``kept[i]`` (sorted, deduplicated).
    """
    kept = np.unique(np.asarray(vertices, dtype=INDEX_DTYPE))
    if len(kept) and (kept[0] < 0 or kept[-1] >= graph.num_vertices):
        raise GraphValidationError("subgraph vertices out of range")
    inverse = np.full(graph.num_vertices, -1, dtype=INDEX_DTYPE)
    inverse[kept] = np.arange(len(kept), dtype=INDEX_DTYPE)
    src, dst, wgt = graph.edge_arrays()
    keep = (inverse[src] >= 0) & (inverse[dst] >= 0)
    sub = build_graph(
        inverse[src[keep]], inverse[dst[keep]], wgt[keep],
        num_vertices=len(kept),
    )
    return sub, kept


def largest_weakly_connected_component(
    graph: DiGraphCSR,
) -> Tuple[DiGraphCSR, IndexArray]:
    """Restrict to the largest weakly-connected component.

    Returns ``(subgraph, kept)`` as in :func:`induced_subgraph`.  A graph
    with no edges returns its (arbitrary) first vertex.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    n = graph.num_vertices
    if n == 0:
        return graph, np.empty(0, dtype=INDEX_DTYPE)
    src, dst, _ = graph.edge_arrays()
    adj = sp.csr_matrix(
        (np.ones(len(src), dtype=np.int8), (src, dst)), shape=(n, n)
    )
    _, labels = connected_components(adj, directed=True, connection="weak")
    sizes = np.bincount(labels)
    keep_label = int(np.argmax(sizes))
    return induced_subgraph(graph, np.flatnonzero(labels == keep_label))


def permute_vertices(
    graph: DiGraphCSR, permutation: IndexArray
) -> DiGraphCSR:
    """Relabel vertex ``v`` as ``permutation[v]`` (must be a bijection)."""
    permutation = np.asarray(permutation, dtype=INDEX_DTYPE)
    n = graph.num_vertices
    if len(permutation) != n or not np.array_equal(
        np.sort(permutation), np.arange(n)
    ):
        raise GraphValidationError("permutation must be a bijection on [0, n)")
    src, dst, wgt = graph.edge_arrays()
    return build_graph(
        permutation[src], permutation[dst], wgt, num_vertices=n
    )


def project_partition(
    partition: IndexArray, kept: IndexArray, num_vertices: int, fill: int = -1
) -> IndexArray:
    """Lift a subgraph partition back to the original vertex space.

    Vertices outside *kept* receive *fill* (default ``-1`` = unassigned).
    """
    partition = np.asarray(partition, dtype=INDEX_DTYPE)
    kept = np.asarray(kept, dtype=INDEX_DTYPE)
    if len(partition) != len(kept):
        raise GraphValidationError("partition and kept must align")
    out = np.full(num_vertices, fill, dtype=INDEX_DTYPE)
    out[kept] = partition
    return out
