"""Registry of the SBPC evaluation datasets (paper Table 1).

The original HPEC GraphChallenge files are not redistributable here, so
each entry synthesizes a statistically equivalent DC-SBM graph on demand
(see DESIGN.md §2).  Entries are addressed by category and vertex count::

    graph, truth = load_dataset("high_low", 5_000)

Generated graphs are cached in-process; pass ``seed`` to get independent
samples of the same entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, Tuple

from ..errors import DatasetError
from ..types import IndexArray
from .csr import DiGraphCSR
from .generators import (
    default_average_degree,
    default_num_blocks,
    generate_category_graph,
)

#: Category keys in paper order (easiest → hardest).
CATEGORIES: Tuple[str, ...] = ("low_low", "low_high", "high_low", "high_high")

#: Vertex counts of Table 1.
SIZES: Tuple[int, ...] = (1_000, 5_000, 20_000, 50_000, 200_000, 1_000_000)

#: Human-readable category labels as printed in the paper.
CATEGORY_LABELS: Dict[str, str] = {
    "low_low": "Low-Low",
    "low_high": "Low-High",
    "high_low": "High-Low",
    "high_high": "High-High",
}


@dataclass(frozen=True)
class DatasetSpec:
    """One row of paper Table 1."""

    category: str
    num_vertices: int

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise DatasetError(
                f"unknown category {self.category!r}; choose from {CATEGORIES}"
            )
        if self.num_vertices < 2:
            raise DatasetError(f"num_vertices must be >= 2, got {self.num_vertices}")

    @property
    def overlap(self) -> str:
        return self.category.split("_")[0]

    @property
    def size_variation(self) -> str:
        return self.category.split("_")[1]

    @property
    def num_blocks(self) -> int:
        """Planted block count (Table 1's B column for table sizes)."""
        return default_num_blocks(self.num_vertices)

    @property
    def expected_num_edges(self) -> int:
        """Approximate |E| implied by Table 1's average degree."""
        return round(default_average_degree(self.num_vertices) * self.num_vertices)

    @property
    def label(self) -> str:
        return f"{CATEGORY_LABELS[self.category]} {self.num_vertices:,}V"


def iter_specs(
    sizes: Tuple[int, ...] = SIZES, categories: Tuple[str, ...] = CATEGORIES
) -> Iterator[DatasetSpec]:
    """Iterate Table 1 entries, category-major."""
    for category in categories:
        for size in sizes:
            yield DatasetSpec(category=category, num_vertices=size)


def normalize_category(name: str) -> str:
    """Accept 'Low-High', 'low_high', 'LOW high' etc.; return canonical key."""
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    if key not in CATEGORIES:
        raise DatasetError(f"unknown category {name!r}; choose from {CATEGORIES}")
    return key


@lru_cache(maxsize=16)
def _load_cached(
    category: str, num_vertices: int, seed: int
) -> Tuple[DiGraphCSR, IndexArray]:
    spec = DatasetSpec(category=category, num_vertices=num_vertices)
    return generate_category_graph(
        num_vertices=spec.num_vertices,
        overlap=spec.overlap,
        size_variation=spec.size_variation,
        seed=seed,
    )


def load_dataset(
    category: str, num_vertices: int, seed: int = 0
) -> Tuple[DiGraphCSR, IndexArray]:
    """Synthesize (and cache) the SBPC dataset entry.

    Returns ``(graph, truth)``; *truth* is the planted partition used for
    NMI evaluation (paper Table 4).
    """
    return _load_cached(normalize_category(category), int(num_vertices), int(seed))


def clear_dataset_cache() -> None:
    """Drop all cached synthesized datasets (frees memory in sweeps)."""
    _load_cached.cache_clear()
