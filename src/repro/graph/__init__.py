"""Graph substrate: CSR containers, builders, IO, DC-SBM generation."""

from .builder import build_graph, from_edge_iterable, from_networkx
from .csr import CSRAdjacency, DiGraphCSR
from .datasets import (
    CATEGORIES,
    CATEGORY_LABELS,
    SIZES,
    DatasetSpec,
    clear_dataset_cache,
    iter_specs,
    load_dataset,
    normalize_category,
)
from .generators import (
    SBMParams,
    default_average_degree,
    default_num_blocks,
    generate_category_graph,
    generate_dcsbm,
)
from .streaming import (
    cumulative_graphs,
    edge_sample_stream,
    snowball_stream,
)
from .io import (
    load_edge_list,
    load_matrix_market,
    load_snap_edge_list,
    save_matrix_market,
    load_graph_with_truth,
    load_truth_partition,
    save_edge_list,
    save_truth_partition,
)
from .transforms import (
    induced_subgraph,
    largest_weakly_connected_component,
    permute_vertices,
    project_partition,
    remove_self_loops,
    reverse,
    symmetrize,
)
from .validation import (
    densify_partition,
    graph_summary,
    partition_is_dense,
    validate_partition,
)

__all__ = [
    "CSRAdjacency",
    "DiGraphCSR",
    "build_graph",
    "from_edge_iterable",
    "from_networkx",
    "CATEGORIES",
    "CATEGORY_LABELS",
    "SIZES",
    "DatasetSpec",
    "clear_dataset_cache",
    "iter_specs",
    "load_dataset",
    "normalize_category",
    "SBMParams",
    "default_average_degree",
    "default_num_blocks",
    "generate_category_graph",
    "generate_dcsbm",
    "cumulative_graphs",
    "edge_sample_stream",
    "snowball_stream",
    "load_edge_list",
    "load_matrix_market",
    "load_snap_edge_list",
    "save_matrix_market",
    "load_graph_with_truth",
    "load_truth_partition",
    "save_edge_list",
    "save_truth_partition",
    "induced_subgraph",
    "largest_weakly_connected_component",
    "permute_vertices",
    "project_partition",
    "remove_self_loops",
    "reverse",
    "symmetrize",
    "densify_partition",
    "graph_summary",
    "partition_is_dense",
    "validate_partition",
]
