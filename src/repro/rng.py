"""Deterministic random-stream management.

Every stochastic component of the library draws from a named child stream
of one master seed, so a full partitioning run is reproducible bit-for-bit
given ``SBPConfig.seed``.  Streams are derived with
:func:`numpy.random.SeedSequence.spawn`-style key hashing rather than ad-hoc
``seed + i`` arithmetic, which avoids correlated streams.
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a child seed from *master_seed* and a path of names.

    The derivation is stable across processes and Python versions (it uses
    CRC32 of the repr path, not ``hash()``).
    """
    key = "/".join(str(n) for n in names).encode("utf-8")
    return (int(master_seed) * 0x9E3779B1 + zlib.crc32(key)) % (2**63 - 1)


def make_rng(master_seed: int, *names: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for the named stream."""
    return np.random.default_rng(derive_seed(master_seed, *names))


class StreamFactory:
    """Factory handing out independent named RNG streams.

    Examples
    --------
    >>> streams = StreamFactory(42)
    >>> rng_a = streams.get("block_merge", 0)
    >>> rng_b = streams.get("vertex_move", 0)
    >>> rng_a is not rng_b
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._counters: dict[str, int] = {}

    def get(self, *names: object) -> np.random.Generator:
        """Return a generator for the exact stream path *names*."""
        return make_rng(self.master_seed, *names)

    def next_in_sequence(self, name: str) -> np.random.Generator:
        """Return the next generator in the auto-incrementing *name* series.

        Useful for per-iteration streams where the caller does not want to
        thread an iteration counter through every call site.
        """
        index = self._counters.get(name, 0)
        self._counters[name] = index + 1
        return make_rng(self.master_seed, name, index)

    def sequence(self, name: str) -> Iterator[np.random.Generator]:
        """Yield an endless sequence of generators for *name*."""
        index = 0
        while True:
            yield make_rng(self.master_seed, name, index)
            index += 1
