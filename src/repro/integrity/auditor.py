"""Blockmodel invariant auditor: detect silent state corruption.

Every ΔMDL the partitioner evaluates (Eqs. 4-7) trusts the CSR
blockmodel to agree with the true inter-block edge counts implied by the
current assignment.  A flipped bit in any of its arrays silently poisons
every subsequent decision without raising anything — the run just
converges to a wrong partition.  This module checks, from first
principles, the invariants the paper's algorithms rely on:

* CSR structure — valid pointers, sorted columns, positive weights, and
  row/col sums equal to the block out/in degree arrays;
* conservation — the blockmodel's total weight equals the graph's total
  edge weight (merges and moves never create or destroy edges);
* assignment agreement — the blockmodel equals one rebuilt from scratch
  (Algorithm 2, recomputed host-side) from the current assignment;
* MDL — the description length is finite and, when an incrementally
  tracked value is supplied, matches the recomputed one within tolerance.

All checks are pure NumPy on the host: no device kernels (so fault
injector counters are untouched) and **no RNG draws** (so audited runs
stay bit-identical to unaudited ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..blockmodel.blockmodel import BlockmodelCSR
from ..blockmodel.entropy import description_length
from ..errors import GraphValidationError, NumericalError
from ..types import INDEX_DTYPE, WEIGHT_DTYPE

#: Tags naming every corruptible structure an integrity site exposes.
STRUCTURE_TAGS = (
    "bmap",
    "csr_out_ptr",
    "csr_out_nbr",
    "csr_out_wgt",
    "csr_in_ptr",
    "csr_in_nbr",
    "csr_in_wgt",
    "deg_out",
    "deg_in",
)


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant, as found by :func:`audit_blockmodel`."""

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.invariant}: {self.detail}"


def structure_arrays(bmap: np.ndarray, blockmodel: BlockmodelCSR) -> dict:
    """Map every :data:`STRUCTURE_TAGS` tag to its live array."""
    return {
        "bmap": bmap,
        "csr_out_ptr": blockmodel.out_ptr,
        "csr_out_nbr": blockmodel.out_nbr,
        "csr_out_wgt": blockmodel.out_wgt,
        "csr_in_ptr": blockmodel.in_ptr,
        "csr_in_nbr": blockmodel.in_nbr,
        "csr_in_wgt": blockmodel.in_wgt,
        "deg_out": blockmodel.deg_out,
        "deg_in": blockmodel.deg_in,
    }


def reference_blockmodel(graph, bmap: np.ndarray, num_blocks: int) -> BlockmodelCSR:
    """Rebuild the blockmodel from scratch on the host (audit reference).

    Sparse sort-reduce over the edge list — the same canonical CSR that
    Algorithm 2 produces, but without touching any device, so an audit
    never perturbs the injector's kernel counters or the sim clock.
    """
    src, dst, wgt = graph.edge_arrays()
    rows = bmap[src].astype(INDEX_DTYPE, copy=False)
    cols = bmap[dst].astype(INDEX_DTYPE, copy=False)
    b = max(int(num_blocks), 1)
    keys = rows.astype(np.int64) * b + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    sorted_wgt = np.asarray(wgt, dtype=WEIGHT_DTYPE)[order]
    if len(keys):
        boundary = np.concatenate(([True], keys[1:] != keys[:-1]))
        starts = np.flatnonzero(boundary)
        unique_keys = keys[starts]
        csum = np.concatenate(([0], np.cumsum(sorted_wgt)))
        ends = np.concatenate((starts[1:], [len(keys)]))
        merged = (csum[ends] - csum[starts]).astype(WEIGHT_DTYPE)
    else:
        unique_keys = np.empty(0, dtype=np.int64)
        merged = np.empty(0, dtype=WEIGHT_DTYPE)
    out_rows = (unique_keys // b).astype(INDEX_DTYPE)
    out_cols = (unique_keys % b).astype(INDEX_DTYPE)
    out_ptr = np.concatenate(
        ([0], np.cumsum(np.bincount(out_rows, minlength=num_blocks)))
    ).astype(INDEX_DTYPE)
    in_order = np.lexsort((out_rows, out_cols))
    in_rows = out_cols[in_order]
    in_ptr = np.concatenate(
        ([0], np.cumsum(np.bincount(in_rows, minlength=num_blocks)))
    ).astype(INDEX_DTYPE)
    deg_out = np.bincount(
        rows, weights=np.asarray(wgt, dtype=np.float64), minlength=num_blocks
    ).astype(WEIGHT_DTYPE)
    deg_in = np.bincount(
        cols, weights=np.asarray(wgt, dtype=np.float64), minlength=num_blocks
    ).astype(WEIGHT_DTYPE)
    return BlockmodelCSR(
        num_blocks=int(num_blocks),
        out_ptr=out_ptr,
        out_nbr=out_cols,
        out_wgt=merged,
        in_ptr=in_ptr,
        in_nbr=out_rows[in_order].astype(INDEX_DTYPE),
        in_wgt=merged[in_order],
        deg_out=deg_out,
        deg_in=deg_in,
    )


def audit_blockmodel(
    graph,
    bmap: np.ndarray,
    blockmodel: BlockmodelCSR,
    *,
    mdl_tol: float = 1e-6,
    tracked_mdl: Optional[float] = None,
) -> List[InvariantViolation]:
    """Run the full invariant catalog; return every violation found.

    An empty list means the state passed.  Checks are ordered cheapest
    first, but all of them run — a repair decision wants the complete
    picture, not the first failure.
    """
    violations: List[InvariantViolation] = []

    # -- assignment validity -------------------------------------------
    if len(bmap) != graph.num_vertices:
        violations.append(
            InvariantViolation(
                "assignment_shape",
                f"bmap has {len(bmap)} entries for {graph.num_vertices} vertices",
            )
        )
    elif len(bmap) and (
        bmap.min() < 0 or bmap.max() >= blockmodel.num_blocks
    ):
        violations.append(
            InvariantViolation(
                "assignment_range",
                f"block ids span [{bmap.min()}, {bmap.max()}] outside "
                f"[0, {blockmodel.num_blocks})",
            )
        )

    # -- CSR structure + degree consistency ----------------------------
    try:
        blockmodel.validate()
    except GraphValidationError as exc:
        violations.append(InvariantViolation("csr_structure", str(exc)))

    # -- edge conservation ---------------------------------------------
    try:
        total = blockmodel.total_weight
    except (ValueError, OverflowError) as exc:  # pathological wgt bytes
        violations.append(InvariantViolation("edge_conservation", str(exc)))
        total = None
    if total is not None and total != graph.total_edge_weight:
        violations.append(
            InvariantViolation(
                "edge_conservation",
                f"blockmodel holds weight {total}, graph has "
                f"{graph.total_edge_weight}",
            )
        )

    # -- assignment <-> blockmodel agreement ---------------------------
    # Only meaningful when the assignment itself is well-formed.
    agreement_ok = False
    if not any(v.invariant.startswith("assignment") for v in violations):
        reference = reference_blockmodel(graph, bmap, blockmodel.num_blocks)
        for name in (
            "out_ptr", "out_nbr", "out_wgt",
            "in_ptr", "in_nbr", "in_wgt",
            "deg_out", "deg_in",
        ):
            if not np.array_equal(getattr(blockmodel, name), getattr(reference, name)):
                violations.append(
                    InvariantViolation(
                        "assignment_agreement",
                        f"{name} differs from a from-scratch rebuild",
                    )
                )
        agreement_ok = not any(
            v.invariant == "assignment_agreement" for v in violations
        )

    # -- MDL: finite, and consistent with the tracked value ------------
    try:
        mdl = description_length(
            blockmodel, graph.num_vertices, graph.total_edge_weight
        )
    except (NumericalError, ValueError, FloatingPointError, IndexError) as exc:
        # IndexError: a corrupted out_nbr/out_ptr can index past the
        # degree arrays before any semantic check has a chance to fire.
        violations.append(InvariantViolation("mdl_finite", str(exc)))
        mdl = None
    if mdl is not None and not np.isfinite(mdl):
        violations.append(
            InvariantViolation("mdl_finite", f"description length is {mdl!r}")
        )
        mdl = None
    if (
        mdl is not None
        and tracked_mdl is not None
        and agreement_ok
        and not any(v.invariant == "csr_structure" for v in violations)
    ):
        scale = max(1.0, abs(float(tracked_mdl)))
        if abs(mdl - float(tracked_mdl)) > mdl_tol * scale:
            violations.append(
                InvariantViolation(
                    "mdl_drift",
                    f"tracked MDL {tracked_mdl!r} vs recomputed {mdl!r} "
                    f"(tol {mdl_tol:g} relative)",
                )
            )
    return violations
