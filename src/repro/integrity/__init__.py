"""Silent-corruption defense: checksums, invariant audits, self-healing.

See ``docs/resilience.md`` ("Silent corruption and self-healing") for
the threat model, the invariant catalog, and the repair ladder.
"""

from .auditor import (
    STRUCTURE_TAGS,
    InvariantViolation,
    audit_blockmodel,
    reference_blockmodel,
    structure_arrays,
)
from .manager import REPAIR_RUNGS, IntegrityManager, IntegrityStats

__all__ = [
    "STRUCTURE_TAGS",
    "InvariantViolation",
    "audit_blockmodel",
    "reference_blockmodel",
    "structure_arrays",
    "REPAIR_RUNGS",
    "IntegrityManager",
    "IntegrityStats",
]
