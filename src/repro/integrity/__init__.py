"""Silent-corruption defense: checksums, invariant audits, self-healing.

See ``docs/resilience.md`` ("Silent corruption and self-healing") for
the threat model, the invariant catalog, and the repair ladder.
"""

from .auditor import (
    STRUCTURE_TAGS,
    InvariantViolation,
    audit_blockmodel,
    reference_blockmodel,
    structure_arrays,
)
from .digest import config_sha256, graph_sha256
from .manager import REPAIR_RUNGS, IntegrityManager, IntegrityStats

__all__ = [
    "config_sha256",
    "graph_sha256",
    "STRUCTURE_TAGS",
    "InvariantViolation",
    "audit_blockmodel",
    "reference_blockmodel",
    "structure_arrays",
    "REPAIR_RUNGS",
    "IntegrityManager",
    "IntegrityStats",
]
