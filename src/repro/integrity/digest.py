"""Content digests for graphs and configurations.

The job server's result cache and the shutdown job-parking machinery
need a stable identity for "the same partitioning request": the same
graph partitioned under the same configuration must produce the same
key on every process, platform, and run.  These helpers produce that
identity as SHA-256 hex digests over canonicalised bytes:

* :func:`graph_sha256` hashes the out-CSR arrays (row pointers,
  neighbour ids, weights) in a fixed little-endian layout plus the
  vertex count.  The in-CSR is derived from the out-CSR, so hashing one
  side fully identifies the graph.
* :func:`config_sha256` hashes the canonical JSON of
  :meth:`~repro.config.SBPConfig.to_dict` *minus* the observability
  block — tracing never changes a partition, so two requests differing
  only in telemetry settings share a cache entry.
"""

from __future__ import annotations

import hashlib
import json
import zlib

import numpy as np

#: bumped if the byte layout under the hash ever changes
_GRAPH_DIGEST_VERSION = b"gsap-graph-digest/1"
_CONFIG_DIGEST_VERSION = "gsap-config-digest/1"


def _canonical_bytes(array: np.ndarray, dtype: str) -> bytes:
    """Little-endian contiguous bytes of *array* viewed as *dtype*."""
    return np.ascontiguousarray(np.asarray(array)).astype(dtype).tobytes()


def graph_sha256(graph) -> str:
    """SHA-256 content digest of a :class:`~repro.graph.csr.DiGraphCSR`."""
    digest = hashlib.sha256()
    digest.update(_GRAPH_DIGEST_VERSION)
    digest.update(int(graph.num_vertices).to_bytes(8, "little"))
    adj = graph.out_adj
    digest.update(_canonical_bytes(adj.ptr, "<i8"))
    digest.update(_canonical_bytes(adj.nbr, "<i8"))
    digest.update(_canonical_bytes(adj.wgt, "<i8"))
    return digest.hexdigest()


def crc32_frame(data: bytes) -> int:
    """CRC32 checksum of one message frame (header + payload).

    The same integrity primitive the checksummed device buffers use,
    reused by :mod:`repro.dist.message` so a frame corrupted on the
    simulated wire is detected at decode time rather than silently
    applied to a blockmodel replica.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def config_sha256(config) -> str:
    """SHA-256 digest of an :class:`~repro.config.SBPConfig`.

    Only result-affecting fields participate: the ``observability``
    block is dropped before hashing (an instrumented run is bit-identical
    to an uninstrumented one, so it must share the cache key).
    """
    payload = config.to_dict()
    payload.pop("observability", None)
    canonical = json.dumps(
        {_CONFIG_DIGEST_VERSION: payload}, sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
