"""The integrity manager: shadow digests, cadenced audits, self-healing.

One :class:`IntegrityManager` rides along with a partitioning run and is
invoked at every *integrity site* — the point right after a blockmodel
rebuild where the pipeline holds a freshly consistent (assignment,
blockmodel) pair.  A site does three things, in order:

1. **commit** — snapshot the clean state: a copy of the assignment plus
   CRC32 digests of every corruptible array;
2. **expose** — hand each array to the fault injector's
   :meth:`~repro.resilience.faults.FaultInjector.on_corruptible` hook,
   which may silently flip bits (this is how chaos tests model cosmic
   rays / faulty VRAM — real corruption needs no invitation);
3. **audit** (every ``audit_every``-th site) — compare digests against
   the shadow and run the full invariant catalog
   (:func:`~repro.integrity.auditor.audit_blockmodel`).  On violation,
   charge the run's fault budget and climb the repair ladder:

   * restore the assignment from the shadow when its digest mismatched
     (rebuilding from a corrupted assignment would launder the damage
     into a consistent-but-wrong state);
   * ``targeted_rebuild`` — Algorithm 2 from the (restored) assignment;
   * ``dense_rebuild`` — the host dense fallback path;
   * ``checkpoint_restore`` — re-derive state from the last checkpoint's
     assignment, when the caller wired one in;

   re-auditing after each rung and raising
   :class:`~repro.errors.IntegrityError` only when every rung fails
   (or when ``repair`` is off).

Determinism: nothing here consumes RNG, and a repair rebuilds exactly
the pre-corruption state, so a repaired run's trajectory — and final
partition — is bit-identical to the fault-free run (guaranteed at
``audit_every=1``; larger cadences can commit corrupted state into the
shadow before the next audit, trading fidelity for cost).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..blockmodel.update import rebuild_blockmodel, rebuild_blockmodel_dense
from ..config import IntegrityConfig
from ..errors import IntegrityError
from ..gpusim.device import buffer_digest
from ..obs.hub import NULL_OBS
from .auditor import audit_blockmodel, structure_arrays

logger = logging.getLogger(__name__)

#: Repair-ladder rungs, least to most drastic.
REPAIR_RUNGS = ("targeted_rebuild", "dense_rebuild", "checkpoint_restore")


@dataclass
class IntegrityStats:
    """What the integrity subsystem saw and did during one run."""

    audits: int = 0
    corruptions_detected: int = 0
    repairs: int = 0
    repairs_by_rung: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    def record_violations(self, violations, limit: int = 64) -> None:
        for violation in violations:
            if len(self.violations) < limit:
                self.violations.append(str(violation))

    def to_dict(self) -> dict:
        return {
            "audits": self.audits,
            "corruptions_detected": self.corruptions_detected,
            "repairs": self.repairs,
            "repairs_by_rung": dict(self.repairs_by_rung),
            "violations": list(self.violations),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IntegrityStats":
        return cls(
            audits=int(payload.get("audits", 0)),
            corruptions_detected=int(payload.get("corruptions_detected", 0)),
            repairs=int(payload.get("repairs", 0)),
            repairs_by_rung=dict(payload.get("repairs_by_rung", {})),
            violations=list(payload.get("violations", [])),
        )


class IntegrityManager:
    """Per-run silent-corruption defense (see module docstring).

    Parameters
    ----------
    config:
        The run's :class:`~repro.config.IntegrityConfig`.
    device:
        The device whose ``fault_injector`` corruptible structures are
        exposed to (exposure happens even with auditing off — real
        corruption does not wait for a detector).
    graph:
        The graph being partitioned; the audit reference is rebuilt
        from its edge list.
    budget:
        Optional shared :class:`~repro.resilience.retry.FaultBudget`;
        every detected corruption is charged against it.
    resilience_stats:
        Optional :class:`~repro.resilience.retry.ResilienceStats` that
        detected corruptions are recorded into.
    obs:
        Observability hub for ``integrity_*`` counters, repair spans and
        instant corruption markers.
    restore_assignment:
        Optional zero-argument callable returning a known-good
        ``(bmap, num_blocks)`` from the last checkpoint, used by the
        final repair rung; ``None`` disables that rung.
    """

    def __init__(
        self,
        config: IntegrityConfig,
        device,
        graph,
        *,
        budget=None,
        resilience_stats=None,
        obs=None,
        restore_assignment: Optional[Callable[[], tuple]] = None,
    ) -> None:
        self.config = config
        self.device = device
        self.graph = graph
        self.budget = budget
        self.resilience_stats = resilience_stats
        self.obs = obs if obs is not None else NULL_OBS
        self.restore_assignment = restore_assignment
        self.stats = IntegrityStats()
        if config.track_device_digests:
            device.track_digests = True
        self._sites_seen = 0
        self._shadow_bmap: Optional[np.ndarray] = None
        self._shadow_num_blocks: int = 0
        self._shadow_digests: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def site(self, bmap: np.ndarray, blockmodel, phase: str,
             tracked_mdl: Optional[float] = None):
        """Run the site protocol; returns the (possibly repaired) blockmodel.

        *bmap* may be repaired **in place** (restored from the shadow)
        when the assignment itself was corrupted.
        """
        audit = self.config.audit
        injector = getattr(self.device, "fault_injector", None)
        expose = injector is not None and hasattr(injector, "on_corruptible")
        if not audit and not expose:
            return blockmodel
        arrays = structure_arrays(bmap, blockmodel)
        if audit:
            self._commit_shadow(bmap, blockmodel, arrays)
        if expose:
            for tag, array in arrays.items():
                injector.on_corruptible(tag, array, phase)
        if not audit:
            return blockmodel
        self._sites_seen += 1
        if self._sites_seen % self.config.audit_every != 0:
            return blockmodel
        blockmodel, repaired = self._audit_site(
            bmap, blockmodel, phase, tracked_mdl
        )
        if repaired:
            self._commit_shadow(
                bmap, blockmodel, structure_arrays(bmap, blockmodel)
            )
        return blockmodel

    # ------------------------------------------------------------------
    def _commit_shadow(self, bmap, blockmodel, arrays) -> None:
        self._shadow_bmap = bmap.copy()
        self._shadow_num_blocks = int(blockmodel.num_blocks)
        self._shadow_digests = {
            tag: buffer_digest(array) for tag, array in arrays.items()
        }

    def _digest_mismatches(self, arrays) -> List[str]:
        return [
            tag
            for tag, array in arrays.items()
            if tag in self._shadow_digests
            and buffer_digest(array) != self._shadow_digests[tag]
        ]

    def _check(self, bmap, blockmodel, tracked_mdl):
        """Digest comparison plus the semantic invariant catalog."""
        arrays = structure_arrays(bmap, blockmodel)
        mismatches = self._digest_mismatches(arrays)
        violations = [
            f"digest_mismatch: {tag} changed since the last clean commit"
            for tag in mismatches
        ]
        violations.extend(
            str(v)
            for v in audit_blockmodel(
                self.graph,
                bmap,
                blockmodel,
                mdl_tol=self.config.mdl_tol,
                tracked_mdl=tracked_mdl,
            )
        )
        return violations, mismatches

    # ------------------------------------------------------------------
    def _audit_site(self, bmap, blockmodel, phase, tracked_mdl):
        self.stats.audits += 1
        obs = self.obs
        obs.count("integrity_audits_total", help="integrity audits performed")
        violations, mismatches = self._check(bmap, blockmodel, tracked_mdl)
        if not violations:
            return blockmodel, False

        self.stats.corruptions_detected += 1
        self.stats.record_violations(violations)
        obs.count(
            "integrity_corruptions_detected_total",
            help="silent corruptions caught by integrity audits",
        )
        obs.instant(
            "corruption_detected", "integrity",
            phase=phase, violations=violations[:8],
        )
        logger.warning(
            "integrity audit failed in phase %r: %s", phase, "; ".join(violations)
        )
        error = IntegrityError(
            f"integrity audit failed in phase {phase!r}: "
            + "; ".join(violations),
            violations=violations,
        )
        if self.resilience_stats is not None:
            self.resilience_stats.record_fault(error)
        if self.budget is not None:
            self.budget.consume(error)  # may raise RetryExhaustedError
        if not self.config.repair:
            raise error
        return self._repair(bmap, blockmodel, phase, mismatches), True

    # ------------------------------------------------------------------
    def _repair(self, bmap, blockmodel, phase, mismatches):
        """Climb the repair ladder until an audit passes."""
        obs = self.obs
        # A corrupted assignment must be restored before any rebuild,
        # otherwise the rebuild launders the damage into a consistent
        # but wrong blockmodel.
        if "bmap" in mismatches and self._shadow_bmap is not None:
            bmap[:] = self._shadow_bmap
        num_blocks = self._shadow_num_blocks or blockmodel.num_blocks
        last_violations: List[str] = []
        for rung in REPAIR_RUNGS:
            candidate = None
            with obs.span("repair", "integrity", rung=rung, phase=phase):
                if rung == "targeted_rebuild":
                    candidate = rebuild_blockmodel(
                        self.device, self.graph, bmap, num_blocks, phase
                    )
                elif rung == "dense_rebuild":
                    candidate = rebuild_blockmodel_dense(
                        self.device, self.graph, bmap, num_blocks, phase
                    )
                elif rung == "checkpoint_restore":
                    if self.restore_assignment is None:
                        continue
                    restored = self.restore_assignment()
                    if restored is None:
                        continue
                    restored_bmap, restored_blocks = restored
                    if len(restored_bmap) != len(bmap):
                        continue
                    bmap[:] = restored_bmap
                    num_blocks = int(restored_blocks)
                    candidate = rebuild_blockmodel_dense(
                        self.device, self.graph, bmap, num_blocks, phase
                    )
            if candidate is None:
                continue
            # Re-audit the candidate: digests must match the shadow again
            # (a clean rebuild from the clean assignment is content-
            # identical) and the semantic catalog must pass.  After a
            # checkpoint restore the shadow no longer applies.
            if rung == "checkpoint_restore":
                self._shadow_digests = {}
                self._shadow_bmap = None
            violations, _ = self._check(bmap, candidate, None)
            if not violations:
                self.stats.repairs += 1
                self.stats.repairs_by_rung[rung] = (
                    self.stats.repairs_by_rung.get(rung, 0) + 1
                )
                obs.count(
                    "integrity_repairs_total",
                    help="successful self-healing repairs",
                )
                obs.instant("repaired", "integrity", rung=rung, phase=phase)
                logger.warning(
                    "integrity repair succeeded via %s in phase %r", rung, phase
                )
                return candidate
            last_violations = violations
        raise IntegrityError(
            "repair ladder exhausted; state still fails audit: "
            + "; ".join(last_violations),
            violations=last_violations,
        )
