"""Partition analysis: quotient graphs, block statistics, comparisons."""

from .block_graph import BlockGraph, quotient_graph
from .compare import (
    BlockMatch,
    ComparisonReport,
    compare_partitions,
    comparison_markdown,
    match_blocks,
    relabel_to_match,
)
from .summaries import (
    BlockStats,
    PartitionSummary,
    summarize_partition,
    summary_markdown,
)

__all__ = [
    "BlockGraph",
    "quotient_graph",
    "BlockMatch",
    "ComparisonReport",
    "compare_partitions",
    "comparison_markdown",
    "match_blocks",
    "relabel_to_match",
    "BlockStats",
    "PartitionSummary",
    "summarize_partition",
    "summary_markdown",
]
