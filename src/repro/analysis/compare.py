"""Partition comparison: block matching and divergence reporting.

Complements the scalar metrics (NMI/ARI) with structural detail: which
blocks of partition A correspond to which blocks of partition B, how
clean each match is, and which vertices disagree — the view needed to
debug *why* a partitioner diverges from the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..metrics import ari, nmi, pairwise_scores
from ..types import INDEX_DTYPE, IndexArray


@dataclass(frozen=True)
class BlockMatch:
    """One greedy best-overlap match between partitions A and B."""

    block_a: int
    block_b: int
    overlap: int  # vertices shared
    size_a: int
    size_b: int

    @property
    def jaccard(self) -> float:
        union = self.size_a + self.size_b - self.overlap
        return self.overlap / union if union else 1.0


@dataclass(frozen=True)
class ComparisonReport:
    """Full comparison of two partitions of the same vertex set."""

    nmi: float
    ari: float
    pairwise_precision: float
    pairwise_recall: float
    matches: List[BlockMatch]
    num_disagreeing_vertices: int
    num_vertices: int

    @property
    def agreement_fraction(self) -> float:
        if self.num_vertices == 0:
            return 1.0
        return 1.0 - self.num_disagreeing_vertices / self.num_vertices


def match_blocks(a: IndexArray, b: IndexArray) -> List[BlockMatch]:
    """Greedy maximum-overlap matching of A-blocks to B-blocks.

    Processes candidate pairs by descending overlap; each block is
    matched at most once (a linear-assignment-lite that is exact when
    partitions are near-identical, which is the regime of interest).
    """
    a = np.asarray(a, dtype=INDEX_DTYPE)
    b = np.asarray(b, dtype=INDEX_DTYPE)
    keep = (a >= 0) & (b >= 0)
    a, b = a[keep], b[keep]
    if len(a) == 0:
        return []
    # contingency table in compacted index space, with the original labels
    # kept so matches report real block ids
    labels_a, a_ids = np.unique(a, return_inverse=True)
    labels_b, b_ids = np.unique(b, return_inverse=True)
    table = np.bincount(
        a_ids * len(labels_b) + b_ids, minlength=len(labels_a) * len(labels_b)
    ).reshape(len(labels_a), len(labels_b))
    sizes_a = table.sum(axis=1)
    sizes_b = table.sum(axis=0)
    pairs = np.dstack(np.unravel_index(np.argsort(-table, axis=None), table.shape))[0]
    used_a: set[int] = set()
    used_b: set[int] = set()
    matches: List[BlockMatch] = []
    for ia, ib in pairs:
        overlap = int(table[ia, ib])
        if overlap == 0:
            break
        if ia in used_a or ib in used_b:
            continue
        used_a.add(int(ia))
        used_b.add(int(ib))
        matches.append(
            BlockMatch(
                block_a=int(labels_a[ia]),
                block_b=int(labels_b[ib]),
                overlap=overlap,
                size_a=int(sizes_a[ia]),
                size_b=int(sizes_b[ib]),
            )
        )
    return matches


def relabel_to_match(a: IndexArray, b: IndexArray) -> IndexArray:
    """Relabel *a*'s blocks with their matched *b* block ids.

    Unmatched A-blocks keep fresh ids above ``max(b) + 1`` so the result
    is a valid partition comparable elementwise with *b*.
    """
    a = np.asarray(a, dtype=INDEX_DTYPE)
    b = np.asarray(b, dtype=INDEX_DTYPE)
    matches = match_blocks(a, b)
    if len(a) == 0:
        return a.copy()
    mapping = np.full(int(a.max()) + 1, -1, dtype=INDEX_DTYPE)
    for m in matches:
        mapping[m.block_a] = m.block_b
    next_fresh = (int(b.max()) if len(b) else -1) + 1
    for block in range(len(mapping)):
        if mapping[block] < 0:
            mapping[block] = next_fresh
            next_fresh += 1
    return mapping[a]


def compare_partitions(a: IndexArray, b: IndexArray) -> ComparisonReport:
    """Produce the full comparison report of partitions *a* and *b*."""
    a = np.asarray(a, dtype=INDEX_DTYPE)
    b = np.asarray(b, dtype=INDEX_DTYPE)
    matches = match_blocks(a, b)
    relabelled = relabel_to_match(a, b)
    disagree = int(np.sum(relabelled != b)) if len(a) else 0
    scores = pairwise_scores(a, b)
    return ComparisonReport(
        nmi=nmi(a, b),
        ari=ari(a, b),
        pairwise_precision=scores.precision,
        pairwise_recall=scores.recall,
        matches=matches,
        num_disagreeing_vertices=disagree,
        num_vertices=len(a),
    )


def comparison_markdown(report: ComparisonReport, top: int = 10) -> str:
    """Render a comparison report for terminals / EXPERIMENTS.md."""
    lines = [
        f"NMI={report.nmi:.3f}  ARI={report.ari:.3f}  "
        f"pairwise P/R={report.pairwise_precision:.3f}/"
        f"{report.pairwise_recall:.3f}",
        f"vertex agreement after matching: {report.agreement_fraction:.1%} "
        f"({report.num_disagreeing_vertices} of {report.num_vertices} differ)",
        "",
        "| block A | block B | overlap | |A| | |B| | jaccard |",
        "|---|---|---|---|---|---|",
    ]
    for m in sorted(report.matches, key=lambda m: -m.overlap)[:top]:
        lines.append(
            f"| {m.block_a} | {m.block_b} | {m.overlap} | {m.size_a} | "
            f"{m.size_b} | {m.jaccard:.2f} |"
        )
    return "\n".join(lines)
