"""Quotient (block-level) graph extraction.

Collapses a partitioned graph onto its blocks: vertices become blocks,
edge weights aggregate — the same computation as the blockmodel, exposed
as a first-class graph so downstream tooling (visualisation, coarse
analysis, hierarchical partitioning) can consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.builder import build_graph
from ..graph.csr import DiGraphCSR
from ..graph.validation import validate_partition
from ..types import INDEX_DTYPE, IndexArray


@dataclass(frozen=True)
class BlockGraph:
    """The quotient graph of a partition.

    Attributes
    ----------
    graph:
        Directed graph over blocks; edge (a, b) weight = total weight of
        original edges from block a to block b (self-loops = intra-block
        weight).
    block_sizes:
        Number of vertices per block.
    """

    graph: DiGraphCSR
    block_sizes: IndexArray

    @property
    def num_blocks(self) -> int:
        return self.graph.num_vertices

    def intra_weight(self, block: int) -> int:
        """Total weight of edges inside *block*."""
        nbr, wgt = self.graph.out_neighbors(block)
        hit = nbr == block
        return int(wgt[hit].sum())

    def total_intra_weight(self) -> int:
        return sum(self.intra_weight(b) for b in range(self.num_blocks))


def quotient_graph(graph: DiGraphCSR, partition: IndexArray) -> BlockGraph:
    """Collapse *graph* onto the blocks of *partition*."""
    partition = np.asarray(partition, dtype=INDEX_DTYPE)
    num_blocks = validate_partition(partition, graph.num_vertices)
    if num_blocks == 0:
        return BlockGraph(
            graph=build_graph([], [], num_vertices=0),
            block_sizes=np.empty(0, dtype=INDEX_DTYPE),
        )
    src, dst, wgt = graph.edge_arrays()
    block_graph = build_graph(
        partition[src], partition[dst], wgt, num_vertices=num_blocks
    )
    sizes = np.bincount(partition, minlength=num_blocks).astype(INDEX_DTYPE)
    return BlockGraph(graph=block_graph, block_sizes=sizes)
