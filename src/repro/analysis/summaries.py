"""Per-block and whole-partition descriptive statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..blockmodel.dense import DenseBlockmodel
from ..blockmodel.entropy import description_length
from ..graph.csr import DiGraphCSR
from ..types import IndexArray
from .block_graph import quotient_graph


@dataclass(frozen=True)
class BlockStats:
    """Statistics of one block of a partition."""

    block_id: int
    size: int
    intra_weight: int  # edge weight with both endpoints in the block
    out_weight: int  # weight leaving the block (excl. intra)
    in_weight: int  # weight entering the block (excl. intra)

    @property
    def cut_weight(self) -> int:
        return self.out_weight + self.in_weight

    @property
    def conductance(self) -> float:
        """Cut weight over total incident weight (0 = perfectly isolated)."""
        total = self.cut_weight + 2 * self.intra_weight
        if total == 0:
            return 0.0
        return self.cut_weight / total


@dataclass(frozen=True)
class PartitionSummary:
    """Whole-partition statistics."""

    num_blocks: int
    num_vertices: int
    total_edge_weight: int
    intra_fraction: float  # share of edge weight inside blocks
    mdl: float
    block_stats: List[BlockStats]

    def size_distribution(self) -> dict:
        sizes = np.array([b.size for b in self.block_stats])
        if len(sizes) == 0:
            return {"min": 0, "median": 0, "max": 0, "cv": 0.0}
        return {
            "min": int(sizes.min()),
            "median": int(np.median(sizes)),
            "max": int(sizes.max()),
            "cv": float(sizes.std() / sizes.mean()) if sizes.mean() else 0.0,
        }


def summarize_partition(
    graph: DiGraphCSR, partition: IndexArray
) -> PartitionSummary:
    """Compute per-block and aggregate statistics of *partition*."""
    bg = quotient_graph(graph, partition)
    b = bg.num_blocks
    stats: List[BlockStats] = []
    total_intra = 0
    for block in range(b):
        nbr_out, w_out = bg.graph.out_neighbors(block)
        nbr_in, w_in = bg.graph.in_neighbors(block)
        intra = int(w_out[nbr_out == block].sum())
        out_w = int(w_out[nbr_out != block].sum())
        in_w = int(w_in[nbr_in != block].sum())
        total_intra += intra
        stats.append(
            BlockStats(
                block_id=block,
                size=int(bg.block_sizes[block]),
                intra_weight=intra,
                out_weight=out_w,
                in_weight=in_w,
            )
        )
    total_weight = graph.total_edge_weight
    if b:
        model = DenseBlockmodel.from_graph(graph, partition, b)
        mdl = description_length(model, graph.num_vertices, total_weight)
    else:
        mdl = 0.0
    return PartitionSummary(
        num_blocks=b,
        num_vertices=graph.num_vertices,
        total_edge_weight=total_weight,
        intra_fraction=(total_intra / total_weight) if total_weight else 0.0,
        mdl=mdl,
        block_stats=stats,
    )


def summary_markdown(summary: PartitionSummary, top: int = 10) -> str:
    """Human-readable report (largest *top* blocks detailed)."""
    dist = summary.size_distribution()
    lines = [
        f"partition: {summary.num_blocks} blocks over "
        f"{summary.num_vertices} vertices",
        f"MDL: {summary.mdl:.1f}   intra-block edge share: "
        f"{summary.intra_fraction:.1%}",
        f"block sizes: min={dist['min']} median={dist['median']} "
        f"max={dist['max']} (cv={dist['cv']:.2f})",
        "",
        "| block | size | intra W | cut W | conductance |",
        "|---|---|---|---|---|",
    ]
    ranked = sorted(summary.block_stats, key=lambda s: -s.size)[:top]
    for s in ranked:
        lines.append(
            f"| {s.block_id} | {s.size} | {s.intra_weight} | "
            f"{s.cut_weight} | {s.conductance:.3f} |"
        )
    return "\n".join(lines)
