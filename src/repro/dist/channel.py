"""A :class:`FaultPlan`-driven simulated interconnect channel.

The channel carries encoded :class:`~repro.dist.message.Frame` bytes
between ranks and is the single place where communication faults happen.
A :class:`CommFaultInjector` consumes the same
:class:`~repro.resilience.faults.FaultPlan` documents the device
injector uses, but ticks the *communication* fault kinds:

``msg_drop`` / ``msg_duplicate`` / ``msg_corrupt``
    Counted per frame-send operation, filtered by the sending rank
    (``spec.rank``) and the message kind (``spec.phase``:
    ``"moves"`` / ``"heartbeat"``).
``msg_reorder``
    Counted per inbox delivery (one per receiving rank per round),
    filtered by the receiving rank; a firing spec shuffles that inbox
    with a seeded RNG.
``rank_crash``
    Counted per communication round; a firing spec silences the named
    rank permanently (its queued frames are discarded and later sends
    are swallowed), modelling a process that died mid-round.

Every decision is deterministic: counters advance identically for
identical traffic, and the only randomness (the reorder shuffle) comes
from a generator seeded by the plan seed, so a given
``(plan, seed, workload)`` triple always yields the same delivery
schedule — the property the fault-matrix tests pin down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..resilience.faults import (
    MESSAGE_FAULT_KINDS,
    FaultLogEntry,
    FaultPlan,
    FaultSpec,
)
from ..rng import make_rng
from .message import Frame


class CommFaultInjector:
    """Counts channel operations and fires planned communication faults."""

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 0) -> None:
        self.plan = plan or FaultPlan()
        self.rng = make_rng(seed, "dist", "comm_faults")
        #: counters keyed ``(kind, rank-filter, phase-filter)``
        self._counters: Dict[Tuple[str, Optional[int], Optional[str]], int] = {}
        self._round_counter = 0
        self.log: List[FaultLogEntry] = []

    @property
    def faults_fired(self) -> int:
        return len(self.log)

    def _tick(
        self, kind: str, rank: Optional[int], phase: Optional[str]
    ) -> List[Tuple[FaultSpec, int]]:
        """Advance counters for *kind*; return the specs that fire."""
        fired: List[Tuple[FaultSpec, int]] = []
        ranks = {None, rank} if rank is not None else {None}
        phases = {None, phase} if phase is not None else {None}
        for rk in ranks:
            for ph in phases:
                key = (kind, rk, ph)
                index = self._counters.get(key, 0)
                self._counters[key] = index + 1
                for spec in self.plan.faults:
                    if (spec.kind != kind or spec.rank != rk
                            or spec.phase != ph):
                        continue
                    if spec.at <= index < spec.at + spec.count:
                        fired.append((spec, index))
        return fired

    def _record(self, spec: FaultSpec, index: int, detail: str) -> None:
        self.log.append(
            FaultLogEntry(kind=spec.kind, op_index=index, phase=spec.phase,
                          detail=detail)
        )

    # ------------------------------------------------------------------
    # hooks called by the channel
    # ------------------------------------------------------------------
    def on_send(self, frame: Frame, data: bytes) -> Tuple[List[bytes], bool, bool]:
        """Fault one frame transmission.

        Returns ``(deliveries, dropped, corrupted)`` where *deliveries*
        is the list of wire-byte copies that actually reach the
        destination inbox (empty for a drop, two for a duplicate, and a
        bit-flipped copy for a corruption).
        """
        label = f"{frame.kind} r{frame.src}->r{frame.dst} seq={frame.seq}"
        dropped = corrupted = duplicated = False
        for spec, index in self._tick("msg_drop", frame.src, frame.kind):
            self._record(spec, index, f"dropped {label}")
            dropped = True
        for spec, index in self._tick("msg_duplicate", frame.src, frame.kind):
            self._record(spec, index, f"duplicated {label}")
            duplicated = True
        payload_data = data
        for spec, index in self._tick("msg_corrupt", frame.src, frame.kind):
            payload_data = self._flip_bit(data, spec)
            self._record(
                spec, index,
                f"corrupted {label} (bit {spec.bit} of byte "
                f"{spec.index % max(1, len(data) - 4)})",
            )
            corrupted = True
        if dropped:
            return [], True, corrupted
        deliveries = [payload_data]
        if duplicated:
            deliveries.append(payload_data)
        return deliveries, False, corrupted

    @staticmethod
    def _flip_bit(data: bytes, spec: FaultSpec) -> bytes:
        """Flip one bit of the frame body (never the trailing CRC32).

        Corrupting the body rather than the checksum guarantees the
        receiver's CRC validation *detects* the damage — the fault
        models wire corruption, not checksum forgery.
        """
        body_len = max(1, len(data) - 4)
        pos = spec.index % body_len
        mutated = bytearray(data)
        mutated[pos] ^= 1 << (spec.bit % 8)
        return bytes(mutated)

    def on_deliver(self, dst: int, num_frames: int) -> bool:
        """Tick the reorder counter for one inbox flush; True = shuffle."""
        reorder = False
        for spec, index in self._tick("msg_reorder", dst, None):
            self._record(
                spec, index, f"reordered inbox of r{dst} ({num_frames} frames)"
            )
            reorder = True
        return reorder

    def on_round(self, live_ranks) -> List[int]:
        """Advance the round counter; return ranks that crash this round."""
        index = self._round_counter
        self._round_counter += 1
        victims: List[int] = []
        for spec in self.plan.faults:
            if spec.kind != "rank_crash":
                continue
            if spec.at <= index < spec.at + spec.count and spec.rank in live_ranks:
                self._record(spec, index, f"rank {spec.rank} crashed")
                victims.append(spec.rank)
        return sorted(set(victims))


class FaultyChannel:
    """Per-destination inboxes behind a :class:`CommFaultInjector`.

    The channel never interprets frames — it moves opaque wire bytes —
    so every fault lands *under* the CRC/sequence machinery and must be
    caught by it, exactly like real link-layer damage.
    """

    def __init__(self, num_ranks: int, injector: CommFaultInjector) -> None:
        self.num_ranks = num_ranks
        self.injector = injector
        self._inbox: Dict[int, List[bytes]] = {r: [] for r in range(num_ranks)}
        self._silenced: set = set()

    def silence(self, rank: int) -> None:
        """Model a crashed rank: discard queued frames, swallow new ones."""
        self._silenced.add(rank)
        self._inbox[rank] = []

    def is_silenced(self, rank: int) -> bool:
        return rank in self._silenced

    def transmit(self, frame: Frame) -> Tuple[bool, bool]:
        """Send one frame through the faulty link.

        Returns ``(dropped, corrupted)`` for the channel's stats; the
        sender itself never learns either (fire-and-forget semantics —
        loss is discovered by the receiver).
        """
        if frame.src in self._silenced:
            # a dead rank transmits nothing
            return True, False
        data = frame.encode()
        deliveries, dropped, corrupted = self.injector.on_send(frame, data)
        if frame.dst not in self._silenced:
            self._inbox[frame.dst].extend(deliveries)
        return dropped, corrupted

    def deliver(self, dst: int) -> Tuple[List[bytes], bool]:
        """Drain *dst*'s inbox; returns ``(frames, was_reordered)``.

        A firing ``msg_reorder`` spec shuffles the inbox with the seeded
        RNG before handing it over; receivers reassemble by sequence
        number.
        """
        frames = self._inbox[dst]
        self._inbox[dst] = []
        reordered = False
        if frames and self.injector.on_deliver(dst, len(frames)):
            order = self.injector.rng.permutation(len(frames))
            frames = [frames[i] for i in order]
            reordered = True
        return frames, reordered
