"""Deterministic rank recovery: re-sharding and replica reconstruction.

EDiSt replicates the blockmodel on every rank, so surviving a crash
needs two things, both deterministic:

* **Re-sharding** — the dead rank's vertices are redistributed by the
  *same* contiguous-1-D rule over the surviving membership
  (:func:`shard_vertices` with one fewer shard), so every survivor
  computes the identical new layout without coordination.
* **Replica reconstruction** — every rank appends each round's globally
  applied move set to a :class:`MoveLogRing` (a bounded ring over a
  folding base snapshot).  A replacement replica for the dead rank is
  rebuilt by replaying the ring onto the base, and recovery *audits*
  this reconstruction against the live replica before continuing: if
  the replay does not reproduce the survivors' assignment byte for
  byte, the run stops instead of silently diverging.

Recovery time is simulated (the run never sleeps): re-sharding plus a
per-replayed-move replay charge, accumulated on the communicator's
simulated clock and reported as ``recovery_s``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import PartitionError
from ..types import INDEX_DTYPE

#: simulated seconds to agree on the new shard layout after a crash
RESHARD_COST_S = 1e-4
#: simulated seconds to replay one logged move during replica rebuild
REPLAY_COST_PER_MOVE_S = 1e-7


def shard_vertices(num_vertices: int, num_shards: int) -> List[np.ndarray]:
    """Contiguous vertex shards (EDiSt's 1-D layout), one per shard.

    When ``num_shards > num_vertices`` some shards are necessarily
    empty; they are returned explicitly (not silently elided) so the
    caller can count and skip them.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    bounds = np.linspace(0, num_vertices, num_shards + 1).astype(int)
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=INDEX_DTYPE)
        for i in range(num_shards)
    ]


class MoveLogRing:
    """Replicated per-round move log over a folding base snapshot.

    Holds at most *capacity* rounds of applied moves; appending beyond
    that folds the oldest round into the base assignment, so memory is
    bounded while :meth:`replica_bmap` can always reconstruct the
    current assignment exactly.
    """

    def __init__(self, initial_bmap: np.ndarray, capacity: int = 64) -> None:
        if capacity < 1:
            raise PartitionError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._base = np.array(initial_bmap, dtype=INDEX_DTYPE, copy=True)
        self._entries: Deque[Tuple[int, List[Tuple[int, int, int]]]] = deque()
        self.rounds_logged = 0
        self.moves_logged = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _fold(bmap: np.ndarray, moves: Iterable[Tuple[int, int, int]]) -> None:
        for v, _r, s in moves:
            bmap[v] = s

    def append(
        self, round_index: int, moves: Sequence[Tuple[int, int, int]]
    ) -> None:
        """Log one completed round's globally applied move set."""
        if len(self._entries) == self.capacity:
            _, oldest = self._entries.popleft()
            self._fold(self._base, oldest)
        self._entries.append((round_index, list(moves)))
        self.rounds_logged += 1
        self.moves_logged += len(moves)

    def replayable_moves(self) -> int:
        """Moves a replica rebuild would replay from the ring."""
        return sum(len(moves) for _, moves in self._entries)

    def replica_bmap(self) -> np.ndarray:
        """Reconstruct the current assignment: base + ring replay."""
        out = self._base.copy()
        for _, moves in self._entries:
            self._fold(out, moves)
        return out


def recovery_cost_s(replayed_moves: int) -> float:
    """Simulated seconds one recovery takes (re-shard + replica replay)."""
    return RESHARD_COST_S + REPLAY_COST_PER_MOVE_S * replayed_moves


def audit_recovery(ring: MoveLogRing, live_bmap: np.ndarray) -> None:
    """Assert the move-log reconstruction matches the live replica.

    This is the recovery oracle: survivors rebuild the dead rank's
    replica from the replicated log and compare it byte for byte with
    their own assignment.  A mismatch means the replicas diverged —
    the run must stop, not continue partitioning garbage.
    """
    rebuilt = ring.replica_bmap()
    if rebuilt.shape != np.asarray(live_bmap).shape or not np.array_equal(
        rebuilt, live_bmap
    ):
        diverged = int(np.sum(rebuilt != live_bmap)) if (
            rebuilt.shape == np.asarray(live_bmap).shape
        ) else -1
        raise PartitionError(
            f"recovery audit failed: move-log replica diverged from the "
            f"live replica ({diverged} vertices differ)"
        )
