"""Wire format of the simulated interconnect: CRC32-framed messages.

Every payload that crosses the simulated wire — accepted-move batches,
heartbeats, recovery control — travels inside a :class:`Frame`: a fixed
little-endian header (source rank, destination rank, round index,
per-channel sequence number, message kind) followed by the payload bytes
and a trailing CRC32 over header + payload (the same integrity primitive
the checksummed device buffers use, via
:func:`repro.integrity.digest.crc32_frame`).

Decoding is strict: a frame whose checksum does not match raises
:class:`~repro.errors.FrameCorruptError`, so a ``msg_corrupt`` fault is
*detected* at the receiver instead of silently applied to a blockmodel
replica.  Sequence numbers are per ``(src, dst)`` channel and monotone;
retransmissions reuse the original sequence number so receivers can
dedupe duplicates and reassemble reordered deliveries.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import CommError, FrameCorruptError
from ..integrity.digest import crc32_frame

#: message kinds carried by the fabric
MSG_MOVES = "moves"
MSG_HEARTBEAT = "heartbeat"
MSG_KINDS = (MSG_MOVES, MSG_HEARTBEAT)

#: bytes per exchanged move record: (vertex id, from block, to block)
MOVE_RECORD_BYTES = 3 * 8

#: ``<`` little-endian: src, dst, round, seq, kind id, payload length
_HEADER = struct.Struct("<iiqqBi")
_CRC = struct.Struct("<I")

#: fixed framing overhead (header + trailing CRC32), in bytes
FRAME_OVERHEAD = _HEADER.size + _CRC.size


@dataclass(frozen=True)
class Frame:
    """One framed message of the simulated interconnect."""

    src: int
    dst: int
    round_index: int
    seq: int
    kind: str
    payload: bytes

    def encode(self) -> bytes:
        """Serialise to wire bytes with a trailing CRC32."""
        if self.kind not in MSG_KINDS:
            raise CommError(f"unknown message kind {self.kind!r}")
        body = _HEADER.pack(
            self.src, self.dst, self.round_index, self.seq,
            MSG_KINDS.index(self.kind), len(self.payload),
        ) + self.payload
        return body + _CRC.pack(crc32_frame(body))

    @classmethod
    def decode(cls, data: bytes) -> "Frame":
        """Parse wire bytes; raise :class:`FrameCorruptError` on a bad CRC."""
        if len(data) < FRAME_OVERHEAD:
            raise FrameCorruptError(
                f"frame truncated to {len(data)} bytes "
                f"(minimum {FRAME_OVERHEAD})"
            )
        body, crc_bytes = data[:-_CRC.size], data[-_CRC.size:]
        (expected,) = _CRC.unpack(crc_bytes)
        actual = crc32_frame(body)
        if actual != expected:
            raise FrameCorruptError(
                f"frame CRC mismatch: expected {expected:#010x}, "
                f"computed {actual:#010x}"
            )
        src, dst, round_index, seq, kind_id, length = _HEADER.unpack(
            body[:_HEADER.size]
        )
        payload = body[_HEADER.size:]
        if kind_id >= len(MSG_KINDS) or length != len(payload):
            raise FrameCorruptError(
                f"frame header inconsistent (kind id {kind_id}, "
                f"declared {length} payload bytes, got {len(payload)})"
            )
        return cls(
            src=src, dst=dst, round_index=round_index, seq=seq,
            kind=MSG_KINDS[kind_id], payload=payload,
        )


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
def pack_moves(moves: Sequence[Tuple[int, int, int]]) -> bytes:
    """Encode accepted moves ``(vertex, from_block, to_block)`` as int64."""
    arr = np.asarray(moves, dtype="<i8").reshape(len(moves), 3)
    return arr.tobytes()


def unpack_moves(payload: bytes) -> List[Tuple[int, int, int]]:
    """Decode a moves payload back into ``(v, r, s)`` tuples."""
    if len(payload) % MOVE_RECORD_BYTES:
        raise FrameCorruptError(
            f"moves payload of {len(payload)} bytes is not a multiple of "
            f"the {MOVE_RECORD_BYTES}-byte record size"
        )
    arr = np.frombuffer(payload, dtype="<i8").reshape(-1, 3)
    return [(int(v), int(r), int(s)) for v, r, s in arr]


#: heartbeat payload: (number of data frames following this round,
#: number of accepted moves being announced)
_HEARTBEAT = struct.Struct("<ii")


def pack_heartbeat(num_frames: int, num_moves: int) -> bytes:
    return _HEARTBEAT.pack(num_frames, num_moves)


def unpack_heartbeat(payload: bytes) -> Tuple[int, int]:
    if len(payload) != _HEARTBEAT.size:
        raise FrameCorruptError(
            f"heartbeat payload is {len(payload)} bytes, "
            f"expected {_HEARTBEAT.size}"
        )
    return _HEARTBEAT.unpack(payload)
