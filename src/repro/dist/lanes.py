"""Per-rank trace lanes: the simulated parallel timeline of a run.

The ranks of :class:`~repro.baselines.edist.EDiStPartitioner` execute
sequentially in-process, so their wall-clock spans would all lie on one
thread track and tell nothing about parallel behaviour.
:class:`RankLanes` gives every rank its own :class:`~repro.obs.trace.Tracer`
and metrics scope and *constructs* the parallel timeline the real
cluster would have had: rounds are laid out barrier-to-barrier on a
shared simulated clock, each rank's measured local-phase time runs from
the round start, the gap to the slowest rank becomes an explicit
``barrier_wait`` span, and the shared exchange / retransmit-backoff /
apply / recovery components follow, identical on every lane (they end
at a barrier for everyone).

Because the timeline is built from the same components the analysis
pass (:mod:`repro.dist.analysis`) sums over, the critical-path
decomposition matches the lane wall clock exactly — the acceptance
bound ("within 5% of wall time") holds by construction, with the slack
reserved for trace-roundtrip float loss.

Every delivered frame is stamped as a Chrome-trace flow-event pair
(``flow_s`` on the sender lane at exchange start, ``flow_f`` on the
receiver lane at exchange end) whose id encodes ``(src, dst, seq)``,
so the merged trace renders messages as arrows between rank lanes and
the ids pair 1:1 with Frame sequence numbers.

Lane building never touches the RNG streams: a traced run stays
bit-identical to an untraced one (the same contract as the rest of
:mod:`repro.obs`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .analysis import RoundRecord, analyze_rounds

__all__ = ["RankLanes", "flow_event_id"]


def flow_event_id(src: int, dst: int, seq: int, num_ranks: int) -> int:
    """Deterministic flow-event id for one delivered frame.

    Sequence numbers are per ``(src, dst)`` channel and monotone, so
    ``(src, dst, seq)`` uniquely names a frame across the whole run and
    the send/finish endpoints of one arrow share one id.
    """
    return (src * num_ranks + dst) * (1 << 32) + seq


class RankLanes:
    """One trace lane + metrics scope per simulated rank."""

    def __init__(self, num_ranks: int, *, enabled: bool = True) -> None:
        self.num_ranks = num_ranks
        self.enabled = bool(enabled)
        #: simulated parallel wall clock (seconds since run start)
        self.clock_s = 0.0
        # the lanes live on a frozen clock (epoch 0) so spans are placed
        # at explicit simulated timestamps via start_abs_s
        self.tracers: Dict[int, Tracer] = {
            rank: Tracer(enabled=self.enabled, clock=lambda: 0.0)
            for rank in range(num_ranks)
        }
        self.metrics: Dict[int, MetricsRegistry] = {
            rank: MetricsRegistry() for rank in range(num_ranks)
        }
        self.rounds: List[RoundRecord] = []

    # ------------------------------------------------------------------
    def _count(self, rank: int, name: str, amount: float, help: str) -> None:
        self.metrics[rank].counter(name, help).inc(amount)

    def record_round(
        self,
        *,
        round_index: int,
        compute_s: Dict[int, float],
        comm_s: float = 0.0,
        retransmit_s: float = 0.0,
        apply_s: float = 0.0,
        recovery_s: float = 0.0,
        aborted: bool = False,
        failed_ranks: Sequence[int] = (),
        flows: Sequence[Tuple[int, int, str, int]] = (),
        moves: Optional[Dict[int, int]] = None,
        payload_bytes: Optional[Dict[int, int]] = None,
    ) -> RoundRecord:
        """Lay one barrier-to-barrier round onto every live lane.

        ``compute_s`` carries the measured local-phase seconds per live
        rank; ``flows`` lists the delivered frames of the round as
        ``(src, dst, kind, seq)``; ``moves``/``payload_bytes`` feed the
        per-rank metric scopes.
        """
        moves = moves or {}
        payload_bytes = payload_bytes or {}
        t0 = self.clock_s
        max_c = max(compute_s.values(), default=0.0)
        barrier_end = t0 + max_c
        exchange_end = barrier_end + comm_s
        retransmit_end = exchange_end + retransmit_s
        survivors = [r for r in compute_s if r not in set(failed_ranks)]

        if self.enabled:
            for rank, c in compute_s.items():
                tracer = self.tracers[rank]
                tracer.add_complete(
                    "compute", "compute", c, start_abs_s=t0,
                    args={"round": round_index,
                          "moves": int(moves.get(rank, 0))},
                )
                tracer.add_complete(
                    "barrier_wait", "barrier", max_c - c,
                    start_abs_s=t0 + c, args={"round": round_index},
                )
                tracer.add_complete(
                    "exchange", "comm", comm_s, start_abs_s=barrier_end,
                    args={"round": round_index,
                          "bytes": int(payload_bytes.get(rank, 0))},
                )
                if retransmit_s > 0:
                    tracer.add_complete(
                        "retransmit_backoff", "retransmit", retransmit_s,
                        start_abs_s=exchange_end,
                        args={"round": round_index},
                    )
                if apply_s > 0 and not aborted:
                    tracer.add_complete(
                        "apply", "compute", apply_s,
                        start_abs_s=retransmit_end,
                        args={"round": round_index},
                    )
            for src, dst, kind, seq in flows:
                flow_id = flow_event_id(src, dst, seq, self.num_ranks)
                flow_args = {"round": round_index, "flow_id": flow_id,
                             "src": src, "dst": dst, "seq": seq,
                             "msg": kind}
                self.tracers[src].add_complete(
                    kind, "flow", 0.0, start_abs_s=barrier_end,
                    args=flow_args, kind="flow_s",
                )
                self.tracers[dst].add_complete(
                    kind, "flow", 0.0, start_abs_s=exchange_end,
                    args=flow_args, kind="flow_f",
                )
            if aborted:
                for rank in failed_ranks:
                    if rank in self.tracers:
                        self.tracers[rank].add_complete(
                            "rank_crash", "dist", 0.0,
                            start_abs_s=retransmit_end,
                            args={"round": round_index}, kind="instant",
                        )
                for rank in survivors:
                    self.tracers[rank].add_complete(
                        "recovery", "recovery", recovery_s,
                        start_abs_s=retransmit_end,
                        args={"round": round_index,
                              "failed_ranks": sorted(failed_ranks)},
                    )

        for rank, c in compute_s.items():
            self._count(rank, "dist_rank_compute_seconds_total", c,
                        "local-phase compute seconds on this rank")
            self._count(rank, "dist_rank_barrier_wait_seconds_total",
                        max_c - c,
                        "seconds idled at round barriers on this rank")
            if moves.get(rank):
                self._count(rank, "dist_rank_moves_accepted_total",
                            moves[rank],
                            "accepted moves broadcast by this rank")
            if payload_bytes.get(rank):
                self._count(rank, "dist_rank_payload_bytes_total",
                            payload_bytes[rank],
                            "moves payload bytes broadcast by this rank")

        record = RoundRecord(
            round_index=round_index,
            compute_s=dict(compute_s),
            comm_s=comm_s,
            retransmit_s=retransmit_s,
            apply_s=apply_s if not aborted else 0.0,
            recovery_s=recovery_s,
            aborted=aborted,
            failed_ranks=tuple(sorted(failed_ranks)),
            flows=len(flows),
            moves={r: int(moves.get(r, 0)) for r in compute_s},
        )
        self.rounds.append(record)
        self.clock_s = retransmit_end + (
            recovery_s if aborted else apply_s
        )
        return record

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The straggler/critical-path analysis over all recorded rounds."""
        return analyze_rounds(self.rounds, wall_s=self.clock_s)
