"""Simulated message-passing runtime for distributed partitioning.

The subsystem EDiSt (:class:`~repro.baselines.edist.EDiStPartitioner`)
rides on instead of direct Python calls: CRC32-framed, sequence-numbered
messages (:mod:`~repro.dist.message`) through a fault-plan-driven
channel (:mod:`~repro.dist.channel`), a round-synchronous communicator
with bounded retransmission and heartbeat failure detection
(:mod:`~repro.dist.comm`), and a deterministic rank-recovery protocol
(:mod:`~repro.dist.recovery`).  See ``docs/distributed.md`` for the
failure model and the two oracles (fault-free byte-identity, bounded
quality loss under recovery).
"""

from .analysis import (
    RoundRecord,
    analysis_markdown,
    analyze_merged_trace,
    analyze_rounds,
)
from .channel import CommFaultInjector, FaultyChannel
from .comm import Communicator, CommStats, DistStats, RoundOutcome
from .lanes import RankLanes, flow_event_id
from .message import (
    FRAME_OVERHEAD,
    MOVE_RECORD_BYTES,
    MSG_HEARTBEAT,
    MSG_KINDS,
    MSG_MOVES,
    Frame,
    pack_heartbeat,
    pack_moves,
    unpack_heartbeat,
    unpack_moves,
)
from .recovery import (
    MoveLogRing,
    audit_recovery,
    recovery_cost_s,
    shard_vertices,
)

__all__ = [
    "RoundRecord",
    "analyze_rounds",
    "analyze_merged_trace",
    "analysis_markdown",
    "RankLanes",
    "flow_event_id",
    "CommFaultInjector",
    "FaultyChannel",
    "Communicator",
    "CommStats",
    "DistStats",
    "RoundOutcome",
    "FRAME_OVERHEAD",
    "MOVE_RECORD_BYTES",
    "MSG_HEARTBEAT",
    "MSG_KINDS",
    "MSG_MOVES",
    "Frame",
    "pack_heartbeat",
    "pack_moves",
    "unpack_heartbeat",
    "unpack_moves",
    "MoveLogRing",
    "audit_recovery",
    "recovery_cost_s",
    "shard_vertices",
]
