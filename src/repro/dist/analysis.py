"""Round-structured analysis of a distributed run's rank lanes.

The distributed move phase is round-synchronous: every rank computes
over its shard, waits at the barrier for the slowest peer, exchanges
accepted moves all-to-all, and applies the global move set.  That
structure makes attribution exact — for every round the lane timeline
(:mod:`repro.dist.lanes`) records one :class:`RoundRecord` with the
per-rank compute time and the shared comm/retransmit/apply/recovery
components, and :func:`analyze_rounds` folds the records into the
signals the EDiSt scaling literature says matter (Wanye et al.,
PAPERS.md: load imbalance and synchronization waits at round barriers):

* **barrier wait** per rank: ``max(compute) - compute[rank]`` summed
  over rounds — the time each rank idles at the round barrier;
* **straggler**: the rank that most often sets the round barrier
  (led the most rounds; ties break to the lowest rank), with its
  total max-minus-median excess;
* **load-imbalance factor**: mean over rounds of
  ``max(compute) / mean(compute)`` (1.0 = perfectly balanced);
* **critical path**: the longest chain through the round DAG is the
  per-round maximum-compute rank followed by the shared exchange —
  decomposed into compute / comm / retransmit / recovery seconds that
  by construction sum to the simulated lane wall time.

:func:`analyze_merged_trace` recovers the same records from a merged
Chrome trace written by :mod:`repro.obs.distmerge` (every lane span
carries a ``round`` arg), so ``gsap dist analyze <trace>`` works from
the artifact alone, without the live run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "RoundRecord",
    "analyze_rounds",
    "analyze_merged_trace",
    "analysis_markdown",
]

#: analysis summary version (rides in run reports and bench records)
DIST_ANALYSIS_SCHEMA = "gsap-dist-analysis/1"


@dataclass
class RoundRecord:
    """One communication round of the simulated parallel timeline.

    ``compute_s`` maps each live rank to its measured local-phase wall
    time; the remaining components are shared across the membership
    (the exchange and apply phases end at a barrier for everyone).
    """

    round_index: int
    compute_s: Dict[int, float]
    comm_s: float = 0.0
    retransmit_s: float = 0.0
    apply_s: float = 0.0
    recovery_s: float = 0.0
    aborted: bool = False
    failed_ranks: Tuple[int, ...] = ()
    #: delivered-frame flow pairs recorded for this round
    flows: int = 0
    moves: Dict[int, int] = field(default_factory=dict)

    @property
    def max_compute_s(self) -> float:
        return max(self.compute_s.values(), default=0.0)

    @property
    def duration_s(self) -> float:
        """Barrier-to-barrier length of the round on every lane."""
        return (self.max_compute_s + self.comm_s + self.retransmit_s
                + self.apply_s + self.recovery_s)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def analyze_rounds(
    rounds: Sequence[RoundRecord],
    *,
    wall_s: Optional[float] = None,
) -> dict:
    """Fold round records into the straggler/critical-path summary.

    ``wall_s`` is the simulated parallel wall time of the run (the lane
    clock); when omitted it is reconstructed as the sum of round
    durations — identical by construction.
    """
    rounds = list(rounds)
    compute_cp = 0.0
    comm_cp = 0.0
    retransmit_cp = 0.0
    recovery_cp = 0.0
    barrier_wait: Dict[int, float] = {}
    led_rounds: Dict[int, int] = {}
    straggler_excess = 0.0
    imbalance_factors: List[float] = []
    per_round: List[dict] = []

    for rec in rounds:
        max_c = rec.max_compute_s
        compute_cp += max_c + rec.apply_s
        comm_cp += rec.comm_s
        retransmit_cp += rec.retransmit_s
        recovery_cp += rec.recovery_s
        straggler_rank = None
        if rec.compute_s:
            # ties break to the lowest rank so the verdict is stable
            straggler_rank = min(
                r for r, c in rec.compute_s.items() if c == max_c
            )
            led_rounds[straggler_rank] = led_rounds.get(straggler_rank, 0) + 1
            straggler_excess += max_c - _median(list(rec.compute_s.values()))
            mean_c = sum(rec.compute_s.values()) / len(rec.compute_s)
            if mean_c > 0:
                imbalance_factors.append(max_c / mean_c)
            for rank, c in rec.compute_s.items():
                barrier_wait[rank] = barrier_wait.get(rank, 0.0) + (max_c - c)
        per_round.append({
            "round": rec.round_index,
            "duration_s": rec.duration_s,
            "max_compute_s": max_c,
            "median_compute_s": _median(list(rec.compute_s.values())),
            "straggler_rank": straggler_rank,
            "comm_s": rec.comm_s,
            "retransmit_s": rec.retransmit_s,
            "apply_s": rec.apply_s,
            "recovery_s": rec.recovery_s,
            "aborted": rec.aborted,
            "failed_ranks": list(rec.failed_ranks),
            "flows": rec.flows,
        })

    total_cp = compute_cp + comm_cp + retransmit_cp + recovery_cp
    if wall_s is None:
        wall_s = total_cp
    straggler = None
    if led_rounds:
        lead = max(led_rounds.values())
        rank = min(r for r, n in led_rounds.items() if n == lead)
        straggler = {
            "rank": rank,
            "rounds_led": lead,
            "excess_s": straggler_excess,
        }
    imbalance = (
        sum(imbalance_factors) / len(imbalance_factors)
        if imbalance_factors else 1.0
    )
    return {
        "schema": DIST_ANALYSIS_SCHEMA,
        "rounds": len(rounds),
        "aborted_rounds": sum(1 for r in rounds if r.aborted),
        "wall_s": wall_s,
        "straggler": straggler,
        "imbalance": imbalance,
        "barrier_wait_s": {
            str(rank): barrier_wait[rank] for rank in sorted(barrier_wait)
        },
        "critical_path": {
            "compute_s": compute_cp,
            "comm_s": comm_cp,
            "retransmit_s": retransmit_cp,
            "recovery_s": recovery_cp,
            "total_s": total_cp,
            "wall_coverage": (total_cp / wall_s) if wall_s > 0 else 1.0,
        },
        "per_round": per_round,
    }


# ----------------------------------------------------------------------
# trace-driven path: rebuild the records from a merged Chrome trace
# ----------------------------------------------------------------------
def analyze_merged_trace(payload: dict) -> dict:
    """Run :func:`analyze_rounds` on a merged multi-lane Chrome trace.

    Every lane span written by :class:`repro.dist.lanes.RankLanes`
    carries ``args.round`` plus its category (``compute`` / ``barrier``
    / ``comm`` / ``retransmit`` / ``recovery``), and the lane pid *is*
    the rank, so the per-round records reconstruct exactly.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a Chrome trace: missing traceEvents list")
    rounds: Dict[int, RoundRecord] = {}
    lane_start = None
    lane_end = None
    for event in events:
        ph = event.get("ph")
        args = event.get("args") or {}
        if "round" not in args:
            continue  # driver-lane spans live on a different clock
        if ph == "X":
            ts = float(event.get("ts", 0.0))
            end = ts + float(event.get("dur", 0.0))
            lane_start = ts if lane_start is None else min(lane_start, ts)
            lane_end = end if lane_end is None else max(lane_end, end)
        index = int(args["round"])
        rec = rounds.get(index)
        if rec is None:
            rec = rounds[index] = RoundRecord(round_index=index, compute_s={})
        if ph == "s":
            rec.flows += 1
            continue
        if ph != "X":
            if ph == "i" and event.get("name") == "rank_crash":
                rec.aborted = True
                rec.failed_ranks = tuple(sorted(
                    set(rec.failed_ranks) | {int(event.get("pid", -1))}
                ))
            continue
        dur_s = float(event.get("dur", 0.0)) / 1e6
        cat = event.get("cat", "")
        name = event.get("name", "")
        rank = int(event.get("pid", 0))
        if cat == "compute" and name == "compute":
            rec.compute_s[rank] = dur_s
            rec.moves[rank] = int(args.get("moves", 0))
        elif cat == "compute" and name == "apply":
            rec.apply_s = max(rec.apply_s, dur_s)
        elif cat == "comm":
            rec.comm_s = max(rec.comm_s, dur_s)
        elif cat == "retransmit":
            rec.retransmit_s = max(rec.retransmit_s, dur_s)
        elif cat == "recovery":
            rec.recovery_s = max(rec.recovery_s, dur_s)
            rec.aborted = True
    if not rounds:
        raise ValueError(
            "no distributed rounds in this trace (was it written by an "
            "EDiSt run with --trace-out?)"
        )
    wall_s = None
    if lane_start is not None and lane_end is not None:
        wall_s = (lane_end - lane_start) / 1e6
    return analyze_rounds(
        [rounds[i] for i in sorted(rounds)], wall_s=wall_s
    )


def analysis_markdown(summary: dict) -> str:
    """Render an analysis summary for terminals and reports."""
    cp = summary["critical_path"]
    wall = summary["wall_s"]
    lines = [
        "# Distributed rank-lane analysis",
        "",
        f"- rounds: {summary['rounds']} "
        f"({summary['aborted_rounds']} aborted by crashes)",
        f"- simulated parallel wall time: {wall:.4f}s",
        f"- load-imbalance factor (max/mean compute): "
        f"{summary['imbalance']:.3f}",
    ]
    straggler = summary.get("straggler")
    if straggler:
        lines.append(
            f"- straggler: rank {straggler['rank']} set the barrier in "
            f"{straggler['rounds_led']}/{summary['rounds']} rounds "
            f"(max-minus-median excess {straggler['excess_s']:.4f}s)"
        )
    lines += [
        "",
        "## Critical path",
        "",
        "| component | seconds | share |",
        "|---|---:|---:|",
    ]
    total = cp["total_s"] or 1.0
    for component in ("compute_s", "comm_s", "retransmit_s", "recovery_s"):
        value = cp[component]
        lines.append(
            f"| {component[:-2]} | {value:.4f} | "
            f"{value / total * 100.0:.1f}% |"
        )
    lines.append(
        f"| **total** | {cp['total_s']:.4f} | "
        f"{cp['wall_coverage'] * 100.0:.1f}% of wall |"
    )
    waits = summary.get("barrier_wait_s") or {}
    if waits:
        lines += [
            "",
            "## Barrier wait per rank",
            "",
            "| rank | wait s |",
            "|---:|---:|",
        ]
        for rank in sorted(waits, key=int):
            lines.append(f"| {rank} | {waits[rank]:.4f} |")
    return "\n".join(lines) + "\n"
