"""The :class:`Communicator`: round-synchronous messaging over a faulty link.

One communicator instance models the interconnect of one distributed
run: per-``(src, dst)`` sequence numbers, CRC32 framing
(:mod:`repro.dist.message`), a :class:`~repro.dist.channel.FaultyChannel`
in the middle, and receiver-driven retransmission on top.

Each :meth:`Communicator.exchange` is one EDiSt communication round:

1. every live rank broadcasts a **heartbeat** announcing how many data
   frames it will send this round (zero-payload ranks send no data
   frame at all — the heartbeat is what lets receivers distinguish
   "nothing to say" from "message lost");
2. ranks with accepted moves broadcast one **moves** frame each;
3. every receiver drains its inbox, reassembles frames by sequence
   number, discards CRC failures and duplicates, and for every missing
   expected frame runs a bounded retransmit loop
   (:func:`repro.resilience.retry.with_retries`, seeded backoff charged
   to the run's fault budget);
4. a rank whose heartbeat cannot be recovered within the retry policy
   is declared **dead**; the verdict is gossiped to the remaining
   receivers, the round aborts, and the caller runs the recovery
   protocol (:mod:`repro.dist.recovery`) before re-running the round
   over the surviving membership.

All waiting is simulated: retransmit backoff accumulates on
:attr:`Communicator.sim_time_s` instead of sleeping, so fault-matrix
tests run at full speed while still measuring recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import FrameCorruptError, FrameLossError, RetryExhaustedError
from ..resilience.faults import FaultPlan
from ..resilience.retry import FaultBudget, RetryPolicy, with_retries
from .channel import CommFaultInjector, FaultyChannel
from .message import (
    MSG_HEARTBEAT,
    MSG_MOVES,
    Frame,
    pack_heartbeat,
    unpack_heartbeat,
)


@dataclass
class CommStats:
    """Counters of the simulated interconnect (fault-free data plane).

    ``messages``/``bytes_sent`` count first transmissions of *data*
    (moves) frames only — zero-payload ranks send no data frame, and
    control traffic (heartbeats, retransmissions) is tallied separately
    by :class:`DistStats` — so the fault-free numbers are comparable
    across runs regardless of the fault plan.
    """

    rounds: int = 0
    messages: int = 0
    bytes_sent: int = 0

    def record_alltoall(
        self, num_ranks: int, payload_bytes_per_rank: Sequence[int]
    ) -> None:
        """One all-to-all: ranks with a non-empty payload send to every peer."""
        self.rounds += 1
        for payload in payload_bytes_per_rank:
            if payload <= 0:
                continue
            self.messages += num_ranks - 1
            self.bytes_sent += payload * (num_ranks - 1)


@dataclass
class DistStats(CommStats):
    """Everything the distributed runtime did during one run."""

    heartbeats: int = 0
    retransmits: int = 0
    retransmit_bytes: int = 0
    dropped_frames: int = 0
    corrupt_frames: int = 0
    duplicate_frames: int = 0
    reorder_events: int = 0
    crashes: int = 0
    recoveries: int = 0
    recovery_s: float = 0.0
    backoff_s: float = 0.0
    empty_shards: int = 0
    dead_ranks: List[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "heartbeats": self.heartbeats,
            "retransmits": self.retransmits,
            "retransmit_bytes": self.retransmit_bytes,
            "dropped_frames": self.dropped_frames,
            "corrupt_frames": self.corrupt_frames,
            "duplicate_frames": self.duplicate_frames,
            "reorder_events": self.reorder_events,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "recovery_s": self.recovery_s,
            "backoff_s": self.backoff_s,
            "empty_shards": self.empty_shards,
            "dead_ranks": list(self.dead_ranks),
        }


@dataclass
class RoundOutcome:
    """Result of one :meth:`Communicator.exchange` round.

    ``delivered[dst][src]`` holds the moves payload each surviving rank
    received (``b""`` for a rank that announced zero moves); ``None``
    when the round aborted because ``failed_ranks`` were declared dead.
    """

    delivered: Optional[Dict[int, Dict[int, bytes]]]
    failed_ranks: List[int]

    @property
    def ok(self) -> bool:
        return not self.failed_ranks


class Communicator:
    """Round-synchronous all-to-all fabric for simulated ranks."""

    def __init__(
        self,
        num_ranks: int,
        *,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        budget: Optional[FaultBudget] = None,
        stats: Optional[DistStats] = None,
        obs=None,
    ) -> None:
        self.num_ranks = num_ranks
        self.live: Set[int] = set(range(num_ranks))
        self.injector = CommFaultInjector(plan, seed=seed)
        self.channel = FaultyChannel(num_ranks, self.injector)
        self.policy = retry_policy or RetryPolicy(
            retry_on=(FrameLossError, FrameCorruptError)
        )
        self.budget = budget
        self.stats = stats or DistStats()
        self.obs = obs
        self.seed = seed
        self.sim_time_s = 0.0
        self.round_index = 0
        self._seq: Dict[Tuple[int, int], int] = {}
        #: last frame per (src, dst, kind, round) for retransmission
        self._sent: Dict[Tuple[int, int, str, int], Frame] = {}
        #: when set, every frame delivered in the current round is
        #: recorded as ``(src, dst, kind, seq)`` for the rank-lane
        #: flow-event pass (:mod:`repro.dist.lanes`)
        self.collect_flows = False
        self.last_round_flows: List[Tuple[int, int, str, int]] = []
        #: optional :class:`~repro.obs.flight.FlightRecorder` fed with
        #: failure-detector verdict gossip for post-incident dumps
        self.flight = None

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: float = 1.0, help: str = "") -> None:
        if self.obs is not None:
            self.obs.count(name, amount, help=help)

    def _sim_sleep(self, seconds: float) -> None:
        """Retransmit backoff charges the simulated clock, not wall time."""
        self.sim_time_s += seconds
        self.stats.backoff_s += seconds

    def _transmit(self, src: int, dst: int, kind: str, payload: bytes,
                  round_index: int) -> None:
        key = (src, dst)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        frame = Frame(src=src, dst=dst, round_index=round_index, seq=seq,
                      kind=kind, payload=payload)
        self._sent[(src, dst, kind, round_index)] = frame
        dropped, _corrupted = self.channel.transmit(frame)
        if dropped and not self.channel.is_silenced(src):
            self.stats.dropped_frames += 1
            self._count("dist_dropped_frames_total",
                        help="frames lost on the simulated wire")

    def _retransmit(self, src: int, dst: int, kind: str,
                    round_index: int) -> None:
        """Receiver-driven resend; reuses the original sequence number."""
        frame = self._sent.get((src, dst, kind, round_index))
        if frame is None or self.channel.is_silenced(src):
            return  # a dead rank answers no retransmit request
        self.stats.retransmits += 1
        self.stats.retransmit_bytes += len(frame.payload)
        self._count("dist_retransmits_total",
                    help="frame retransmissions requested by receivers")
        dropped, _ = self.channel.transmit(frame)
        if dropped:
            self.stats.dropped_frames += 1
            self._count("dist_dropped_frames_total",
                        help="frames lost on the simulated wire")

    # ------------------------------------------------------------------
    def _collect(self, dst: int, round_index: int,
                 store: Dict[Tuple[int, str], Frame],
                 seen: Set[Tuple[int, str, int]]) -> None:
        """Drain and decode *dst*'s inbox into *store* (dedup by seq)."""
        raw, reordered = self.channel.deliver(dst)
        if reordered:
            self.stats.reorder_events += 1
            self._count("dist_reorder_events_total",
                        help="inbox deliveries shuffled by the channel")
        decoded: List[Frame] = []
        for data in raw:
            try:
                frame = Frame.decode(data)
            except FrameCorruptError:
                self.stats.corrupt_frames += 1
                self._count("dist_corrupt_frames_total",
                            help="frames rejected by the CRC32 check")
                continue
            if frame.round_index != round_index:
                continue  # stale frame from an aborted round
            decoded.append(frame)
        # reassemble by sequence number: reordering on the wire cannot
        # reorder application
        decoded.sort(key=lambda f: (f.src, f.seq))
        for frame in decoded:
            key = (frame.src, frame.kind, frame.seq)
            if key in seen:
                self.stats.duplicate_frames += 1
                self._count("dist_duplicate_frames_total",
                            help="duplicate frames discarded by receivers")
                continue
            seen.add(key)
            store[(frame.src, frame.kind)] = frame

    def _await_frame(self, dst: int, src: int, kind: str, round_index: int,
                     store: Dict[Tuple[int, str], Frame],
                     seen: Set[Tuple[int, str, int]]) -> Frame:
        """Receive with bounded retransmission; may raise RetryExhausted."""
        if (src, kind) in store:
            return store[(src, kind)]

        def attempt(n: int) -> Frame:
            if n > 0:
                self._retransmit(src, dst, kind, round_index)
            self._collect(dst, round_index, store, seen)
            frame = store.get((src, kind))
            if frame is None:
                raise FrameLossError(
                    f"round {round_index}: rank {dst} is missing the "
                    f"{kind} frame from rank {src}"
                )
            return frame

        return with_retries(
            attempt, self.policy,
            seed=self.seed,
            label=f"dist_recv:{round_index}:{src}->{dst}:{kind}",
            budget=self.budget,
            sleep=self._sim_sleep,
        )

    def _budget_blown(self) -> bool:
        return (self.budget is not None
                and self.budget.consumed > self.budget.limit)

    def _gossip_verdict(self, dst: int, src: int, round_index: int) -> None:
        """Record one failure-detector verdict on the flight recorder.

        The first receiver to exhaust retries on a peer gossips the
        death verdict to the remaining receivers; the flight-recorder
        entry preserves who condemned whom in which round so a
        post-crash dump reconstructs the detection sequence.
        """
        if self.flight is not None:
            self.flight.append("verdict_gossip", {
                "verdict": "dead",
                "suspect": src,
                "accuser": dst,
                "round": round_index,
            })

    # ------------------------------------------------------------------
    def exchange(self, payloads: Dict[int, bytes]) -> RoundOutcome:
        """One round-synchronous all-to-all over the live membership.

        *payloads* maps each live rank to its (possibly empty) moves
        payload.  Returns the delivered payloads, or an aborted outcome
        naming the ranks the failure detector declared dead — the caller
        recovers and re-runs the round.
        """
        round_index = self.round_index
        self.round_index += 1
        members = sorted(self.live)
        self.last_round_flows = []

        # planned crashes fire at the round barrier: the victim dies
        # *before* sending, and nobody is told — survivors must detect.
        for victim in self.injector.on_round(self.live):
            self.channel.silence(victim)

        senders = [r for r in members if not self.channel.is_silenced(r)]
        msgs0, bytes0 = self.stats.messages, self.stats.bytes_sent
        self.stats.record_alltoall(
            len(members),
            [len(payloads.get(r, b"")) if r in senders else 0
             for r in members],
        )
        self._count("dist_rounds_total", help="communication rounds attempted")
        self._count("dist_messages_total", self.stats.messages - msgs0,
                    help="data frames sent (first transmissions)")
        self._count("dist_bytes_total", self.stats.bytes_sent - bytes0,
                    help="data payload bytes on the wire")

        if len(members) == 1:
            return RoundOutcome(delivered={members[0]: {}}, failed_ranks=[])

        # send phase: heartbeats announce intent, then data frames
        for src in senders:
            payload = payloads.get(src, b"")
            heartbeat = pack_heartbeat(1 if payload else 0, len(payload))
            for dst in members:
                if dst == src:
                    continue
                self._transmit(src, dst, MSG_HEARTBEAT, heartbeat, round_index)
                self.stats.heartbeats += 1
        self._count("dist_heartbeats_total",
                    (len(senders)) * (len(members) - 1),
                    help="heartbeat frames sent")
        for src in senders:
            payload = payloads.get(src, b"")
            if not payload:
                continue
            for dst in members:
                if dst != src:
                    self._transmit(src, dst, MSG_MOVES, payload, round_index)

        # receive phase, rank order: the first receiver to give up on a
        # peer gossips the verdict so later receivers skip it
        suspected: List[int] = []
        delivered: Dict[int, Dict[int, bytes]] = {}
        for dst in members:
            if self.channel.is_silenced(dst):
                continue
            store: Dict[Tuple[int, str], Frame] = {}
            seen: Set[Tuple[int, str, int]] = set()
            self._collect(dst, round_index, store, seen)
            from_src: Dict[int, bytes] = {}
            for src in members:
                if src == dst or src in suspected:
                    continue
                try:
                    heartbeat = self._await_frame(
                        dst, src, MSG_HEARTBEAT, round_index, store, seen
                    )
                except RetryExhaustedError:
                    if self._budget_blown():
                        raise
                    suspected.append(src)
                    self._gossip_verdict(dst, src, round_index)
                    continue
                if self.collect_flows:
                    self.last_round_flows.append(
                        (src, dst, MSG_HEARTBEAT, heartbeat.seq)
                    )
                num_frames, _announced = unpack_heartbeat(heartbeat.payload)
                if num_frames == 0:
                    from_src[src] = b""
                    continue
                try:
                    moves = self._await_frame(
                        dst, src, MSG_MOVES, round_index, store, seen
                    )
                except RetryExhaustedError:
                    if self._budget_blown():
                        raise
                    suspected.append(src)
                    self._gossip_verdict(dst, src, round_index)
                    continue
                if self.collect_flows:
                    self.last_round_flows.append(
                        (src, dst, MSG_MOVES, moves.seq)
                    )
                from_src[src] = moves.payload
            delivered[dst] = from_src

        if suspected:
            failed = sorted(set(suspected))
            for rank in failed:
                self.live.discard(rank)
                self.channel.silence(rank)
                self.stats.crashes += 1
                self.stats.dead_ranks.append(rank)
                self._count("dist_rank_crashes_total",
                            help="ranks declared dead by the failure detector")
                if self.obs is not None:
                    self.obs.instant("rank_crash", "dist", rank=rank,
                                     round=round_index)
            return RoundOutcome(delivered=None, failed_ranks=failed)
        return RoundOutcome(delivered=delivered, failed_ranks=[])
