"""Thrust-style data-parallel primitives on the simulated device.

These are the building blocks GSAP composes its kernels from (paper
Algorithm 2 names them directly): ``sort_by_key``, segmented sort,
subsegment-head detection, exclusive scan, segmented reduction, and
reduce-by-key.  Every primitive routes through :meth:`Device.execute`
so the profiler and the simulated clock see one launch with a cost
proportional to the data touched.

All primitives take and return plain ``numpy`` arrays — device residence
is by convention (the partitioner uploads the graph once and downloads the
result once; everything between stays "on device").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import DeviceError
from ..types import INDEX_DTYPE
from .device import Device, KernelCost

_LOG2_SORT_FACTOR = 20.0  # ops/item charged for a device radix/merge sort


def _cost_linear(n: int, ops: float = 1.0, words: int = 2) -> KernelCost:
    return KernelCost(work_items=max(n, 1), ops_per_item=ops, bytes_moved=8 * words * max(n, 1))


def exclusive_scan(
    device: Device, values: np.ndarray, phase: Optional[str] = None
) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``, ``len = n + 1``.

    Returns ``n + 1`` entries so the result can serve directly as a CSR
    pointer array (the final entry is the total).
    """
    values = np.asarray(values)

    def body() -> np.ndarray:
        out = np.empty(len(values) + 1, dtype=values.dtype)
        out[0] = 0
        np.cumsum(values, out=out[1:])
        return out

    return device.execute("exclusive_scan", _cost_linear(len(values), 2.0), body, phase)


def gather(
    device: Device, source: np.ndarray, indices: np.ndarray, phase: Optional[str] = None
) -> np.ndarray:
    """Random-access gather ``out[i] = source[indices[i]]``."""
    source = np.asarray(source)
    indices = np.asarray(indices)
    return device.execute(
        "gather",
        _cost_linear(len(indices), 1.0, words=3),
        lambda: source[indices],
        phase,
    )


def scatter(
    device: Device,
    target: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    phase: Optional[str] = None,
) -> None:
    """Random-access scatter ``target[indices[i]] = values[i]`` (in place)."""

    def body() -> None:
        target[indices] = values

    device.execute("scatter", _cost_linear(len(indices), 1.0, words=3), body, phase)


def sort_by_key(
    device: Device,
    keys: np.ndarray,
    values: np.ndarray,
    phase: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable sort of ``(keys, values)`` pairs by key (thrust::sort_by_key)."""
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape[: keys.ndim]:
        raise DeviceError("sort_by_key: keys and values must align on axis 0")

    def body() -> Tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable")
        return keys[order], values[order]

    return device.execute(
        "sort_by_key", _cost_linear(len(keys), _LOG2_SORT_FACTOR, 4), body, phase
    )


def argsort_by_key(
    device: Device, keys: np.ndarray, phase: Optional[str] = None
) -> np.ndarray:
    """Stable argsort (returns the permutation, as CUB's sort-pairs does)."""
    keys = np.asarray(keys)
    return device.execute(
        "argsort_by_key",
        _cost_linear(len(keys), _LOG2_SORT_FACTOR, 4),
        lambda: np.argsort(keys, kind="stable"),
        phase,
    )


def segment_ids_from_ptr(
    device: Device, seg_ptr: np.ndarray, phase: Optional[str] = None
) -> np.ndarray:
    """Expand a CSR pointer array into per-element segment ids."""
    seg_ptr = np.asarray(seg_ptr)
    lengths = seg_ptr[1:] - seg_ptr[:-1]
    total = int(seg_ptr[-1]) if len(seg_ptr) else 0

    def body() -> np.ndarray:
        return np.repeat(
            np.arange(len(lengths), dtype=INDEX_DTYPE), lengths
        )

    return device.execute("segment_ids", _cost_linear(total, 1.0), body, phase)


def segmented_sort(
    device: Device,
    seg_ids: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    phase: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort ``(keys, values)`` within each segment (cub segmented sort).

    *seg_ids* must be non-decreasing (elements grouped by segment).
    Returns ``(seg_ids, keys, values)`` with keys ascending per segment.
    """
    seg_ids = np.asarray(seg_ids)
    keys = np.asarray(keys)
    values = np.asarray(values)

    def body() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Composite-key trick: one global stable sort on (seg, key).
        order = np.lexsort((keys, seg_ids))
        return seg_ids[order], keys[order], values[order]

    return device.execute(
        "segmented_sort", _cost_linear(len(keys), _LOG2_SORT_FACTOR, 6), body, phase
    )


def find_subsegment_heads(
    device: Device,
    seg_ids: np.ndarray,
    keys: np.ndarray,
    phase: Optional[str] = None,
) -> np.ndarray:
    """Flag positions starting a new (segment, key) run (paper Fig. 7 step).

    Implements the warp-shuffle adjacent-compare of Algorithm 2 line 6:
    ``head[i] = (i == 0) or seg[i] != seg[i-1] or key[i] != key[i-1]``.
    """
    seg_ids = np.asarray(seg_ids)
    keys = np.asarray(keys)

    def body() -> np.ndarray:
        n = len(keys)
        heads = np.empty(n, dtype=bool)
        if n == 0:
            return heads
        heads[0] = True
        np.not_equal(seg_ids[1:], seg_ids[:-1], out=heads[1:])
        heads[1:] |= keys[1:] != keys[:-1]
        return heads

    return device.execute(
        "find_subseg_heads", _cost_linear(len(keys), 2.0, 3), body, phase
    )


def segmented_reduce_sum(
    device: Device,
    values: np.ndarray,
    seg_ptr: np.ndarray,
    phase: Optional[str] = None,
) -> np.ndarray:
    """Per-segment sums over a CSR-pointed layout (empty segments → 0).

    Each segment is reduced independently of every other segment (one
    ``np.add.reduceat`` slice per segment), so a segment's sum depends
    *only* on that segment's values.  The incremental blockmodel
    maintainer relies on this: re-reducing one untouched segment in
    isolation reproduces the bit-identical float sum a full pass would
    produce, which is what lets it patch cached per-block entropy term
    sums instead of recomputing all of them.
    """
    values = np.asarray(values)
    seg_ptr = np.asarray(seg_ptr)

    def body() -> np.ndarray:
        dtype = (np.result_type(values.dtype, np.int64)
                 if values.dtype.kind in "iu" else values.dtype)
        num_segments = max(len(seg_ptr) - 1, 0)
        out = np.zeros(num_segments, dtype=dtype)
        if len(values) == 0 or num_segments == 0:
            return out
        lengths = seg_ptr[1:] - seg_ptr[:-1]
        nonempty = np.flatnonzero(lengths > 0)
        if len(nonempty):
            starts = np.asarray(seg_ptr[:-1][nonempty], dtype=np.intp)
            tail = int(seg_ptr[-1])
            if tail < len(values):
                # reduceat's final slice runs to the end of *values*;
                # cap it at seg_ptr[-1] with a sentinel start.
                starts = np.append(starts, tail)
                sums = np.add.reduceat(values.astype(dtype, copy=False), starts)[:-1]
            else:
                sums = np.add.reduceat(values.astype(dtype, copy=False), starts)
            out[nonempty] = sums
        return out

    return device.execute(
        "segmented_reduce_sum", _cost_linear(len(values), 2.0), body, phase
    )


def reduce_by_key(
    device: Device,
    keys: np.ndarray,
    values: np.ndarray,
    phase: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compress consecutive equal keys, summing their values.

    Keys must already be grouped (sorted); this is thrust::reduce_by_key.
    Returns ``(unique_keys, sums)``.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)

    def body() -> Tuple[np.ndarray, np.ndarray]:
        n = len(keys)
        if n == 0:
            return keys[:0].copy(), values[:0].copy()
        heads = np.empty(n, dtype=bool)
        heads[0] = True
        np.not_equal(keys[1:], keys[:-1], out=heads[1:])
        starts = np.flatnonzero(heads)
        return keys[starts], np.add.reduceat(values, starts)

    return device.execute("reduce_by_key", _cost_linear(len(keys), 3.0, 4), body, phase)


def segmented_reduce_by_key(
    device: Device,
    seg_ids: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    phase: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce duplicate keys *within* segments (Algorithm 2 line 8).

    Inputs must be grouped by segment with keys sorted inside each segment
    (the output of :func:`segmented_sort`).  Returns
    ``(out_seg_ids, out_keys, out_sums)``.
    """
    seg_ids = np.asarray(seg_ids)
    keys = np.asarray(keys)
    values = np.asarray(values)

    def body() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = len(keys)
        if n == 0:
            return seg_ids[:0].copy(), keys[:0].copy(), values[:0].copy()
        heads = np.empty(n, dtype=bool)
        heads[0] = True
        np.not_equal(seg_ids[1:], seg_ids[:-1], out=heads[1:])
        heads[1:] |= keys[1:] != keys[:-1]
        starts = np.flatnonzero(heads)
        return seg_ids[starts], keys[starts], np.add.reduceat(values, starts)

    return device.execute(
        "segmented_reduce_by_key", _cost_linear(len(keys), 3.0, 5), body, phase
    )


def segmented_argmin(
    device: Device,
    values: np.ndarray,
    seg_ptr: np.ndarray,
    phase: Optional[str] = None,
) -> np.ndarray:
    """Index (global) of the minimum value in each segment; -1 if empty."""
    values = np.asarray(values)
    seg_ptr = np.asarray(seg_ptr)

    def body() -> np.ndarray:
        num_segments = len(seg_ptr) - 1
        out = np.full(num_segments, -1, dtype=INDEX_DTYPE)
        lengths = seg_ptr[1:] - seg_ptr[:-1]
        nonempty = np.flatnonzero(lengths > 0)
        if len(nonempty) == 0:
            return out
        # minimum_reduceat over the start offsets of non-empty segments;
        # to recover argmin we compare against the per-segment minimum.
        starts = seg_ptr[:-1][nonempty]
        mins = np.minimum.reduceat(values, starts)
        seg_of = np.repeat(np.arange(num_segments, dtype=INDEX_DTYPE), lengths)
        min_of_elem = np.full(num_segments, np.inf)
        min_of_elem[nonempty] = mins
        is_min = values == min_of_elem[seg_of]
        # first minimal element per segment
        idx = np.flatnonzero(is_min)
        segs = seg_of[idx]
        first = np.full(num_segments, -1, dtype=INDEX_DTYPE)
        # reversed scatter keeps the *first* occurrence
        first[segs[::-1]] = idx[::-1]
        out[nonempty] = first[nonempty]
        return out

    return device.execute(
        "segmented_argmin", _cost_linear(len(values), 3.0, 3), body, phase
    )


def bincount(
    device: Device,
    values: np.ndarray,
    minlength: int,
    weights: Optional[np.ndarray] = None,
    phase: Optional[str] = None,
) -> np.ndarray:
    """Histogram with atomic-add semantics (device-side ``atomicAdd``)."""
    values = np.asarray(values)

    def body() -> np.ndarray:
        out = np.bincount(values, weights=weights, minlength=minlength)
        if weights is None:
            return out.astype(INDEX_DTYPE)
        return out

    return device.execute("bincount", _cost_linear(len(values), 1.5, 3), body, phase)
