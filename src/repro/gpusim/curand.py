"""cuRAND-style batched random lookup tables (paper Fig. 4).

GSAP avoids per-proposal RNG calls by pre-generating three tables on
concurrent streams before each proposal kernel:

* a **uniform table** — one float in [0, 1) per proposal slot (the ``x``
  of Algorithm 1 line 6);
* a **random-block table** — one uniformly random block id per slot
  (Algorithm 1 lines 3 and 8);
* a **multinomial table** — for each proposer, one neighbour drawn from
  the multinomial distribution given by its adjacency weights
  (Algorithm 1 line 5).

The multinomial draw is realised with a single vectorized inverse-CDF
lookup over the row-wise cumulative weights, which is exactly the
alias-free strategy a segmented ``searchsorted`` kernel implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..types import FLOAT_DTYPE, INDEX_DTYPE
from .device import Device, KernelCost
from .stream import Stream, overlap_time_s


def uniform_table(
    device: Device,
    rng: np.random.Generator,
    size: int,
    phase: Optional[str] = None,
    stream: Optional[Stream] = None,
) -> np.ndarray:
    """Batch of ``size`` uniforms in [0, 1) (cuRAND uniform generator)."""
    cost = KernelCost(work_items=max(size, 1), ops_per_item=4.0)
    body = lambda: rng.random(size, dtype=FLOAT_DTYPE)
    if stream is not None:
        return stream.launch("curand_uniform", cost, body, phase)
    return device.execute("curand_uniform", cost, body, phase)


def random_block_table(
    device: Device,
    rng: np.random.Generator,
    size: int,
    num_blocks: int,
    phase: Optional[str] = None,
    stream: Optional[Stream] = None,
) -> np.ndarray:
    """Batch of ``size`` uniformly random block ids in [0, num_blocks)."""
    cost = KernelCost(work_items=max(size, 1), ops_per_item=4.0)
    body = lambda: rng.integers(0, max(num_blocks, 1), size=size, dtype=INDEX_DTYPE)
    if stream is not None:
        return stream.launch("curand_random_block", cost, body, phase)
    return device.execute("curand_random_block", cost, body, phase)


def multinomial_neighbor_table(
    device: Device,
    rng: np.random.Generator,
    ptr: np.ndarray,
    nbr: np.ndarray,
    wgt: np.ndarray,
    rows: Optional[np.ndarray] = None,
    phase: Optional[str] = None,
    stream: Optional[Stream] = None,
) -> np.ndarray:
    """Draw, per row, one neighbour with probability ∝ edge weight.

    Parameters
    ----------
    ptr, nbr, wgt:
        A CSR adjacency (rows may be blocks or vertices).
    rows:
        Which rows to sample for (default: all rows, once each).

    Returns
    -------
    For each requested row, a sampled neighbour id, or ``-1`` for rows
    with no (positively-weighted) neighbours.
    """
    ptr = np.asarray(ptr)
    nbr = np.asarray(nbr)
    wgt = np.asarray(wgt)
    if rows is None:
        rows = np.arange(len(ptr) - 1, dtype=INDEX_DTYPE)
    else:
        rows = np.asarray(rows, dtype=INDEX_DTYPE)

    def body() -> np.ndarray:
        out = np.full(len(rows), -1, dtype=INDEX_DTYPE)
        if len(nbr) == 0 or len(rows) == 0:
            return out
        # Global cumulative weights; per-row totals by difference.
        csum = np.concatenate(([0], np.cumsum(wgt, dtype=np.float64)))
        lo = ptr[rows]
        hi = ptr[rows + 1]
        totals = csum[hi] - csum[lo]
        has_nbrs = totals > 0
        if not np.any(has_nbrs):
            return out
        u = rng.random(len(rows))
        # Target cumulative mass inside each row; searchsorted on the
        # global csum then clamps into the row's range.
        targets = csum[lo] + u * totals
        idx = np.searchsorted(csum, targets, side="right") - 1
        idx = np.clip(idx, lo, hi - 1)
        out[has_nbrs] = nbr[idx[has_nbrs]]
        return out

    cost = KernelCost(work_items=max(len(rows), 1), ops_per_item=8.0,
                      bytes_moved=8 * (len(rows) * 4 + len(wgt)))
    if stream is not None:
        return stream.launch("curand_multinomial", cost, body, phase)
    return device.execute("curand_multinomial", cost, body, phase)


@dataclass(frozen=True)
class LookupTables:
    """The three pre-generated tables consumed by a proposal kernel."""

    uniform: np.ndarray
    random_block: np.ndarray
    multinomial: np.ndarray
    #: simulated makespan of the three overlapped table builds
    build_time_s: float


def build_lookup_tables(
    device: Device,
    rng: np.random.Generator,
    num_slots: int,
    num_blocks: int,
    ptr: np.ndarray,
    nbr: np.ndarray,
    wgt: np.ndarray,
    rows: Optional[np.ndarray] = None,
    phase: Optional[str] = None,
) -> LookupTables:
    """Build all three tables on concurrent streams (paper Fig. 4).

    ``num_slots`` is the proposal-slot count (``B × num_proposals`` in the
    block-merge phase, batch size in the vertex-move phase); the
    multinomial table has one entry per *row* in ``rows``.
    """
    s_uniform, s_random, s_multi = Stream(device), Stream(device), Stream(device)
    uniform = uniform_table(device, rng, num_slots, phase, stream=s_uniform)
    random_block = random_block_table(
        device, rng, num_slots, num_blocks, phase, stream=s_random
    )
    multinomial = multinomial_neighbor_table(
        device, rng, ptr, nbr, wgt, rows=rows, phase=phase, stream=s_multi
    )
    return LookupTables(
        uniform=uniform,
        random_block=random_block,
        multinomial=multinomial,
        build_time_s=overlap_time_s(s_uniform, s_random, s_multi),
    )
