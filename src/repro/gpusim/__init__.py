"""Simulated-GPU substrate: device model, memory, streams, primitives.

This package is the repo's substitution for the paper's CUDA runtime
(DESIGN.md §2): kernels execute as vectorized NumPy bodies while the
device accounts both wall time and an A4000-calibrated simulated time.
"""

from .device import (
    A4000,
    TINY_DEVICE,
    BufferMismatch,
    Device,
    DeviceSpec,
    KernelCost,
    buffer_digest,
    get_default_device,
    set_default_device,
)
from .kernels import DEFAULT_BLOCK_DIM, LaunchInfo, launch, launch_geometry
from .memory import (
    DeviceArray,
    device_empty,
    device_zeros,
    ensure_same_device,
    to_device,
)
from .profiler import KernelRecord, PhaseSummary, Profiler, TransferRecord
from .stream import Event, Stream, overlap_time_s
from .taskgraph import ExecutableGraph, GraphNode, TaskGraph
from .curand import (
    LookupTables,
    build_lookup_tables,
    multinomial_neighbor_table,
    random_block_table,
    uniform_table,
)

__all__ = [
    "A4000",
    "TINY_DEVICE",
    "BufferMismatch",
    "buffer_digest",
    "Device",
    "DeviceSpec",
    "KernelCost",
    "get_default_device",
    "set_default_device",
    "DEFAULT_BLOCK_DIM",
    "LaunchInfo",
    "launch",
    "launch_geometry",
    "DeviceArray",
    "device_empty",
    "device_zeros",
    "ensure_same_device",
    "to_device",
    "KernelRecord",
    "PhaseSummary",
    "Profiler",
    "TransferRecord",
    "Event",
    "Stream",
    "overlap_time_s",
    "ExecutableGraph",
    "GraphNode",
    "TaskGraph",
    "LookupTables",
    "build_lookup_tables",
    "multinomial_neighbor_table",
    "random_block_table",
    "uniform_table",
]
