"""Kernel- and transfer-level profiling for the simulated device.

The profiler feeds the paper's breakdown figures: Figure 10 (per-phase
runtime shares), Figure 11 (average time per proposal) and Figure 12
(blockmodel-update speedups).  Each kernel execution produces one
:class:`KernelRecord`; aggregation is by kernel name and by phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class KernelRecord:
    """Timing record of one simulated kernel launch."""

    name: str
    phase: str
    wall_time_s: float
    sim_time_s: float
    work_items: int
    bytes_moved: int


@dataclass(frozen=True)
class TransferRecord:
    """Timing record of one host<->device transfer."""

    nbytes: int
    direction: str  # "h2d" | "d2h"
    sim_time_s: float
    phase: str = "unphased"


@dataclass
class PhaseSummary:
    """Aggregated timings of one phase (kernels plus transfers)."""

    phase: str
    wall_time_s: float = 0.0
    sim_time_s: float = 0.0
    num_launches: int = 0
    work_items: int = 0
    bytes_moved: int = 0
    num_transfers: int = 0
    transfer_bytes: int = 0
    transfer_sim_time_s: float = 0.0


class Profiler:
    """Accumulates kernel and transfer records."""

    def __init__(self) -> None:
        self.kernel_records: List[KernelRecord] = []
        self.transfer_records: List[TransferRecord] = []

    def record(self, record: KernelRecord) -> None:
        self.kernel_records.append(record)

    def record_transfer(
        self,
        nbytes: int,
        direction: str,
        sim_time_s: float,
        phase: str = "unphased",
    ) -> None:
        self.transfer_records.append(
            TransferRecord(
                nbytes=nbytes, direction=direction,
                sim_time_s=sim_time_s, phase=phase,
            )
        )

    def reset(self) -> None:
        self.kernel_records.clear()
        self.transfer_records.clear()

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def by_phase(self) -> Dict[str, PhaseSummary]:
        """Aggregate kernel *and transfer* records per phase label.

        Transfers contribute their simulated PCIe time to the phase's
        ``sim_time_s`` (and the dedicated ``transfer_*`` fields), so
        H2D/D2H traffic is visible in per-phase breakdowns instead of
        silently vanishing from them.
        """
        summaries: Dict[str, PhaseSummary] = {}
        for rec in self.kernel_records:
            summary = summaries.setdefault(rec.phase, PhaseSummary(phase=rec.phase))
            summary.wall_time_s += rec.wall_time_s
            summary.sim_time_s += rec.sim_time_s
            summary.num_launches += 1
            summary.work_items += rec.work_items
            summary.bytes_moved += rec.bytes_moved
        for xfer in self.transfer_records:
            summary = summaries.setdefault(
                xfer.phase, PhaseSummary(phase=xfer.phase)
            )
            summary.sim_time_s += xfer.sim_time_s
            summary.num_transfers += 1
            summary.transfer_bytes += xfer.nbytes
            summary.transfer_sim_time_s += xfer.sim_time_s
        return summaries

    def by_kernel(self) -> Dict[str, PhaseSummary]:
        """Aggregate kernel records per kernel name."""
        summaries: Dict[str, PhaseSummary] = {}
        for rec in self.kernel_records:
            summary = summaries.setdefault(rec.name, PhaseSummary(phase=rec.name))
            summary.wall_time_s += rec.wall_time_s
            summary.sim_time_s += rec.sim_time_s
            summary.num_launches += 1
            summary.work_items += rec.work_items
            summary.bytes_moved += rec.bytes_moved
        return summaries

    def total_wall_time_s(self) -> float:
        return sum(r.wall_time_s for r in self.kernel_records)

    def total_sim_time_s(self) -> float:
        kernels = sum(r.sim_time_s for r in self.kernel_records)
        transfers = sum(r.sim_time_s for r in self.transfer_records)
        return kernels + transfers

    def total_transferred_bytes(self) -> int:
        return sum(r.nbytes for r in self.transfer_records)

    def phase_shares(self, clock: str = "wall") -> Dict[str, float]:
        """Fraction of total time per phase, on the chosen clock.

        Used directly by the Figure-10 bench.
        """
        if clock not in ("wall", "sim"):
            raise ValueError(f"clock must be 'wall' or 'sim', got {clock!r}")
        attr = "wall_time_s" if clock == "wall" else "sim_time_s"
        summaries = self.by_phase()
        total = sum(getattr(s, attr) for s in summaries.values())
        if total <= 0:
            return {phase: 0.0 for phase in summaries}
        return {
            phase: getattr(summary, attr) / total
            for phase, summary in summaries.items()
        }

    def launch_count(self) -> int:
        return len(self.kernel_records)

    def snapshot(self) -> "ProfilerSnapshot":
        """Freeze current totals (cheap; used to diff around a phase)."""
        return ProfilerSnapshot(
            num_kernels=len(self.kernel_records),
            num_transfers=len(self.transfer_records),
        )

    def records_since(self, snapshot: "ProfilerSnapshot") -> List[KernelRecord]:
        return self.kernel_records[snapshot.num_kernels :]


@dataclass(frozen=True)
class ProfilerSnapshot:
    """Marker into a profiler's record streams."""

    num_kernels: int
    num_transfers: int
