"""CUDA-Graph-style kernel task graphs (the paper's stated future work).

The paper's conclusion plans to "incorporate GPU task parallelism using
the CUDA Graph to reduce the overhead associated with launching CUDA
kernels for larger graphs."  This module implements that extension on
the simulated device:

* :class:`TaskGraph` records a DAG of kernel nodes (with explicit
  dependencies, like ``cudaGraphAddKernelNode``);
* :meth:`TaskGraph.instantiate` freezes it into an executable
  :class:`ExecutableGraph`;
* :meth:`ExecutableGraph.launch` replays the whole DAG under a *single*
  launch overhead, with independent nodes overlapping on the simulated
  timeline — the two effects a real CUDA Graph buys.

The ablation bench ``bench_ablation_taskgraph.py`` quantifies the saved
overhead against individually-launched kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import DeviceError, KernelLaunchError
from .device import Device, KernelCost


@dataclass(frozen=True)
class GraphNode:
    """One kernel node in a task graph."""

    node_id: int
    name: str
    cost: KernelCost
    body: Callable[[], object]
    dependencies: Tuple[int, ...]


class TaskGraph:
    """A recordable DAG of kernels (cudaGraph analogue)."""

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._nodes: List[GraphNode] = []

    def add_kernel(
        self,
        name: str,
        cost: KernelCost,
        body: Callable[[], object],
        dependencies: Sequence["GraphNode"] = (),
    ) -> GraphNode:
        """Add a kernel node; *dependencies* must already be in this graph."""
        for dep in dependencies:
            if dep.node_id >= len(self._nodes) or self._nodes[dep.node_id] is not dep:
                raise DeviceError(
                    f"dependency {dep.name!r} does not belong to this graph"
                )
        node = GraphNode(
            node_id=len(self._nodes),
            name=name,
            cost=cost,
            body=body,
            dependencies=tuple(d.node_id for d in dependencies),
        )
        self._nodes.append(node)
        return node

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def instantiate(self, device: Device) -> "ExecutableGraph":
        """Freeze into an executable graph (cudaGraphInstantiate)."""
        if not self._nodes:
            raise KernelLaunchError("cannot instantiate an empty task graph")
        return ExecutableGraph(self.name, tuple(self._nodes), device)


class ExecutableGraph:
    """An instantiated task graph replayable with one launch overhead."""

    def __init__(
        self, name: str, nodes: Tuple[GraphNode, ...], device: Device
    ) -> None:
        self.name = name
        self.nodes = nodes
        self.device = device
        self._order = self._topological_order()

    def _topological_order(self) -> List[int]:
        indegree = {n.node_id: len(n.dependencies) for n in self.nodes}
        children: Dict[int, List[int]] = {n.node_id: [] for n in self.nodes}
        for node in self.nodes:
            for dep in node.dependencies:
                children[dep].append(node.node_id)
        ready = [nid for nid, deg in indegree.items() if deg == 0]
        order: List[int] = []
        while ready:
            nid = ready.pop()
            order.append(nid)
            for child in children[nid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.nodes):
            raise DeviceError(f"task graph {self.name!r} contains a cycle")
        return order

    def launch(self) -> Dict[int, object]:
        """Replay the DAG; returns ``{node_id: body result}``.

        Cost model: one launch overhead for the whole graph; each node's
        compute/memory time starts after its slowest dependency, so
        independent branches overlap (the makespan is the DAG's critical
        path, not the serial sum).
        """
        device = self.device
        spec = device.spec
        finish_at: Dict[int, float] = {}
        results: Dict[int, object] = {}
        import time

        wall_start = time.perf_counter()
        critical_path = 0.0
        for nid in self._order:
            node = self.nodes[nid]
            results[nid] = node.body()
            compute = (
                node.cost.work_items * node.cost.ops_per_item
            ) / spec.effective_ops_per_s
            memory = node.cost.resolved_bytes() / (
                spec.memory_bandwidth_gbps * 1e9
            )
            duration = max(compute, memory)
            start = max(
                (finish_at[dep] for dep in node.dependencies), default=0.0
            )
            finish_at[nid] = start + duration
            critical_path = max(critical_path, finish_at[nid])
        wall = time.perf_counter() - wall_start

        # account the whole replay as one profiler entry + one overhead
        sim = spec.kernel_launch_overhead_s + critical_path
        total_work = sum(n.cost.work_items for n in self.nodes)
        total_bytes = sum(n.cost.resolved_bytes() for n in self.nodes)
        device._sim_time_s += sim
        from .profiler import KernelRecord

        device.profiler.record(
            KernelRecord(
                name=f"graph:{self.name}",
                phase="taskgraph",
                wall_time_s=wall,
                sim_time_s=sim,
                work_items=total_work,
                bytes_moved=total_bytes,
            )
        )
        return results

    def serial_sim_time(self) -> float:
        """Simulated time the same kernels would take launched one by one
        (per-launch overhead, no overlap) — the comparison baseline."""
        spec = self.device.spec
        total = 0.0
        for node in self.nodes:
            compute = (
                node.cost.work_items * node.cost.ops_per_item
            ) / spec.effective_ops_per_s
            memory = node.cost.resolved_bytes() / (
                spec.memory_bandwidth_gbps * 1e9
            )
            total += spec.kernel_launch_overhead_s + max(compute, memory)
        return total
