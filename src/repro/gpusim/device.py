"""Simulated GPU device model.

The paper runs GSAP on an NVIDIA RTX A4000 (CUDA 12.2).  This module
provides the substitution described in DESIGN.md §2: a :class:`Device`
object that executes *data-parallel kernel bodies* (vectorized NumPy
functions) while accounting two clocks:

``wall`` — the real time spent executing the vectorized body on the host
(this is what the benchmark figures compare, because the vectorized
formulation *is* the data-parallel algorithm), and

``sim`` — an analytic estimate of what the same kernel would cost on the
modelled GPU: per-launch overhead plus the larger of the compute and the
memory-bandwidth roofline terms.  The sim clock is what reproduces the
small-graph behaviour of paper Table 3 (launch/transfer overhead dominates
at 1K vertices) and is reported as a secondary column in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
import weakref
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, TypeVar

from ..errors import DeviceError, DeviceMemoryError, KernelLaunchError
from .profiler import KernelRecord, Profiler

T = TypeVar("T")


def buffer_digest(array) -> int:
    """CRC32 content digest of an array's bytes (cheap, not cryptographic)."""
    return zlib.crc32(array.tobytes())


@dataclass(frozen=True)
class BufferMismatch:
    """One device buffer whose content no longer matches its digest."""

    allocation_id: int
    expected: int
    actual: int


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware parameters of a modelled GPU.

    The throughput figures are deliberately *effective* (irregular integer
    workloads with scattered access), not peak datasheet numbers.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    memory_bytes: int
    memory_bandwidth_gbps: float  # GB/s
    pcie_bandwidth_gbps: float  # GB/s, host <-> device
    kernel_launch_overhead_s: float
    #: effective simple-operations per second for irregular kernels
    effective_ops_per_s: float
    warp_size: int = 32

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm


#: RTX A4000: 48 SMs x 128 cores, 16 GB, 448 GB/s, PCIe 4.0 x16.
A4000 = DeviceSpec(
    name="RTX A4000 (simulated)",
    num_sms=48,
    cores_per_sm=128,
    clock_ghz=1.56,
    memory_bytes=16 * 1024**3,
    memory_bandwidth_gbps=448.0,
    pcie_bandwidth_gbps=24.0,
    kernel_launch_overhead_s=5e-6,
    effective_ops_per_s=2.0e11,
)

#: A deliberately small device for tests exercising memory pressure.
TINY_DEVICE = DeviceSpec(
    name="tiny (test)",
    num_sms=2,
    cores_per_sm=32,
    clock_ghz=1.0,
    memory_bytes=1 * 1024**2,
    memory_bandwidth_gbps=10.0,
    pcie_bandwidth_gbps=4.0,
    kernel_launch_overhead_s=5e-6,
    effective_ops_per_s=1.0e9,
)


@dataclass
class KernelCost:
    """Work description used by the analytic cost model.

    Parameters
    ----------
    work_items:
        Logical thread count of the launch (e.g. one per edge).
    ops_per_item:
        Simple operations each item performs (default 1).
    bytes_moved:
        Total DRAM traffic of the kernel; defaults to
        ``8 * work_items`` (one 64-bit word touched per item).
    """

    work_items: int
    ops_per_item: float = 1.0
    bytes_moved: Optional[int] = None

    def resolved_bytes(self) -> int:
        return int(self.bytes_moved if self.bytes_moved is not None else 8 * self.work_items)


class Device:
    """A simulated GPU: memory accounting, clocks, kernel execution.

    A fault injector (:class:`repro.resilience.FaultInjector`) may be
    assigned to :attr:`fault_injector`; when present it is consulted
    before every allocation, kernel launch, and transfer, and may raise
    injected device errors or stall transfers.

    A span tracer (:class:`repro.obs.Tracer`) may be assigned to
    :attr:`tracer` (usually via
    :meth:`repro.obs.Observability.attach_device`); when present and
    enabled, every kernel launch and PCIe transfer is mirrored as a
    leaf span nested under whatever span the caller has open.
    """

    def __init__(self, spec: DeviceSpec = A4000, track_digests: bool = False) -> None:
        self.spec = spec
        self.profiler = Profiler()
        self.fault_injector = None
        self.tracer = None
        #: when True, DeviceArray buffers register CRC32 content digests
        #: that :meth:`verify_buffers` can sweep for silent corruption
        self.track_digests = track_digests
        self._allocated_bytes = 0
        self._sim_time_s = 0.0
        self._transfer_sim_time_s = 0.0
        self._live_allocations: dict[int, int] = {}
        self._next_allocation_id = 0
        self._active_phase: Optional[str] = None
        # allocation id -> (weakref to the backing ndarray, crc32 digest)
        self._digests: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # memory accounting (used by memory.DeviceArray)
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int) -> int:
        """Reserve *nbytes* of device memory; returns an allocation id."""
        if nbytes < 0:
            raise DeviceError(f"cannot allocate negative bytes: {nbytes}")
        if self.fault_injector is not None:
            self.fault_injector.on_allocate(nbytes)
        if self._allocated_bytes + nbytes > self.spec.memory_bytes:
            raise DeviceMemoryError(
                f"device {self.spec.name!r} out of memory: "
                f"{self._allocated_bytes + nbytes} > {self.spec.memory_bytes}"
            )
        self._allocated_bytes += nbytes
        allocation_id = self._next_allocation_id
        self._next_allocation_id += 1
        self._live_allocations[allocation_id] = nbytes
        return allocation_id

    def free(self, allocation_id: int) -> None:
        """Release a previous allocation (idempotent per id)."""
        nbytes = self._live_allocations.pop(allocation_id, None)
        if nbytes is not None:
            self._allocated_bytes -= nbytes
        self._digests.pop(allocation_id, None)

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    # ------------------------------------------------------------------
    # buffer content digests (silent-corruption detection)
    # ------------------------------------------------------------------
    def register_buffer(self, allocation_id: int, array) -> None:
        """Record a content digest for *array* under *allocation_id*.

        No-op unless :attr:`track_digests` is set.  Only a weak reference
        to the array is held, so registration never extends buffer
        lifetime; dead entries are dropped lazily.
        """
        if not self.track_digests:
            return
        self._digests[allocation_id] = (weakref.ref(array), buffer_digest(array))

    def refresh_digest(self, allocation_id: int) -> None:
        """Re-digest a registered buffer after an intentional write."""
        entry = self._digests.get(allocation_id)
        if entry is None:
            return
        array = entry[0]()
        if array is None:
            self._digests.pop(allocation_id, None)
            return
        self._digests[allocation_id] = (entry[0], buffer_digest(array))

    def forget_buffer(self, allocation_id: int) -> None:
        """Drop the digest entry for an allocation (idempotent)."""
        self._digests.pop(allocation_id, None)

    def verify_buffers(self) -> List[BufferMismatch]:
        """Sweep all registered buffers; return those whose bytes changed.

        Kernels legitimately rewrite buffers in place — callers are
        expected to :meth:`refresh_digest` after intentional writes, so a
        mismatch here means bytes changed *without* any code admitting to
        the write: silent corruption.
        """
        mismatches: List[BufferMismatch] = []
        for allocation_id, (ref, expected) in list(self._digests.items()):
            array = ref()
            if array is None:
                self._digests.pop(allocation_id, None)
                continue
            actual = buffer_digest(array)
            if actual != expected:
                mismatches.append(
                    BufferMismatch(allocation_id, expected=expected, actual=actual)
                )
        return mismatches

    @property
    def tracked_buffers(self) -> int:
        """Number of live buffers currently carrying digests."""
        return sum(1 for ref, _ in self._digests.values() if ref() is not None)

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    @property
    def sim_time_s(self) -> float:
        """Total simulated device time accumulated so far (kernels + transfers)."""
        return self._sim_time_s + self._transfer_sim_time_s

    def reset_clocks(self) -> None:
        self._sim_time_s = 0.0
        self._transfer_sim_time_s = 0.0
        self.profiler.reset()

    def _kernel_sim_time(self, cost: KernelCost) -> float:
        compute = (cost.work_items * cost.ops_per_item) / self.spec.effective_ops_per_s
        memory = cost.resolved_bytes() / (self.spec.memory_bandwidth_gbps * 1e9)
        return self.spec.kernel_launch_overhead_s + max(compute, memory)

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute transfers issued in this block to phase *label*.

        ``execute`` sets the active phase automatically for the duration
        of a kernel body; this context manager covers host-side regions
        that move data without launching a kernel.
        """
        previous = self._active_phase
        self._active_phase = label
        try:
            yield
        finally:
            self._active_phase = previous

    def charge_transfer(
        self, nbytes: int, direction: str, phase: Optional[str] = None
    ) -> float:
        """Account a host<->device copy; returns its simulated duration.

        The transfer is attributed to *phase* when given, else to the
        currently active phase (set by :meth:`execute` / :meth:`phase`),
        else ``"unphased"``.
        """
        if direction not in ("h2d", "d2h"):
            raise DeviceError(f"unknown transfer direction {direction!r}")
        duration = self.spec.kernel_launch_overhead_s + nbytes / (
            self.spec.pcie_bandwidth_gbps * 1e9
        )
        if self.fault_injector is not None:
            duration += self.fault_injector.on_transfer(nbytes, direction)
        phase = phase or self._active_phase or "unphased"
        self._transfer_sim_time_s += duration
        self.profiler.record_transfer(nbytes, direction, duration, phase)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.add_complete(
                direction,
                "transfer",
                duration,
                args={
                    "nbytes": nbytes,
                    "phase": phase,
                    "clock": "sim",
                },
            )
        return duration

    # ------------------------------------------------------------------
    # kernel execution
    # ------------------------------------------------------------------
    def execute(
        self,
        name: str,
        cost: KernelCost,
        body: Callable[[], T],
        phase: Optional[str] = None,
    ) -> T:
        """Run a kernel *body*, timing it on both clocks.

        Parameters
        ----------
        name:
            Kernel name for the profiler (Figs. 10-12 aggregate on it).
        cost:
            Work description for the simulated-time roofline.
        body:
            Zero-argument callable executing the vectorized kernel.
        phase:
            Optional phase label (``block_merge`` / ``vertex_move`` /
            ``update`` / ...) for breakdown reports.
        """
        if cost.work_items < 0:
            raise KernelLaunchError(
                f"kernel {name!r} launched with negative work: {cost.work_items}"
            )
        if self.fault_injector is not None:
            self.fault_injector.on_kernel(name, phase, cost.resolved_bytes())
        previous_phase = self._active_phase
        if phase is not None:
            self._active_phase = phase
        start = time.perf_counter()
        try:
            result = body()
        finally:
            self._active_phase = previous_phase
        wall = time.perf_counter() - start
        sim = self._kernel_sim_time(cost)
        self._sim_time_s += sim
        self.profiler.record(
            KernelRecord(
                name=name,
                phase=phase or "unphased",
                wall_time_s=wall,
                sim_time_s=sim,
                work_items=cost.work_items,
                bytes_moved=cost.resolved_bytes(),
            )
        )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.add_complete(
                name,
                "kernel",
                wall,
                start_abs_s=start,
                args={
                    "phase": phase or "unphased",
                    "work_items": cost.work_items,
                    "sim_time_s": sim,
                    "bytes_moved": cost.resolved_bytes(),
                },
            )
        return result


_default_device: Optional[Device] = None


def get_default_device() -> Device:
    """Process-wide default device (an A4000 model), created lazily."""
    global _default_device
    if _default_device is None:
        _default_device = Device(A4000)
    return _default_device


def set_default_device(device: Optional[Device]) -> None:
    """Override (or with ``None`` reset) the process-wide default device."""
    global _default_device
    _default_device = device
