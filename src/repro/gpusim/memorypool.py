"""Pooled device-memory allocator.

Paper §4.2 attributes GSAP's small-graph overhead partly to "memory
allocation on GPU".  Real CUDA code amortises that with a pooling
allocator (cudaMallocAsync / RMM style); this module models one:
freed blocks are binned by size class and reused instead of returned to
the device, so steady-state phases allocate without touching the
(simulated) expensive allocation path.

The pool tracks hit/miss statistics so benches can quantify the saving.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import DeviceError
from .device import Device, get_default_device

#: size classes are powers of two starting here
MIN_CLASS_BYTES = 256


def size_class(nbytes: int) -> int:
    """Smallest power-of-two class >= nbytes (min 256 B)."""
    if nbytes < 0:
        raise DeviceError(f"negative allocation size: {nbytes}")
    cls = MIN_CLASS_BYTES
    while cls < nbytes:
        cls *= 2
    return cls


@dataclass
class PoolStats:
    """Counters of pool behaviour."""

    allocations: int = 0
    hits: int = 0  # served from the free list
    misses: int = 0  # required a fresh device allocation
    releases: int = 0
    bytes_requested: int = 0
    bytes_held: int = 0  # currently cached in free lists

    @property
    def hit_rate(self) -> float:
        if self.allocations == 0:
            return 0.0
        return self.hits / self.allocations


class PooledAllocation:
    """A handle to a pooled block; return it with :meth:`release`."""

    __slots__ = ("pool", "class_bytes", "requested_bytes", "_live", "_device_id")

    def __init__(self, pool: "MemoryPool", class_bytes: int,
                 requested_bytes: int, device_id: int) -> None:
        self.pool = pool
        self.class_bytes = class_bytes
        self.requested_bytes = requested_bytes
        self._live = True
        self._device_id = device_id

    @property
    def live(self) -> bool:
        return self._live

    def release(self) -> None:
        if self._live:
            self._live = False
            self.pool._return_block(self)


class MemoryPool:
    """Size-class pooling allocator on top of a :class:`Device`.

    Parameters
    ----------
    device:
        The device whose memory is pooled.
    max_cached_bytes:
        Cap on memory held in free lists; beyond it, released blocks are
        returned to the device (default: an eighth of device memory).
    """

    def __init__(
        self, device: Optional[Device] = None,
        max_cached_bytes: Optional[int] = None,
    ) -> None:
        self.device = device or get_default_device()
        self.max_cached_bytes = (
            max_cached_bytes
            if max_cached_bytes is not None
            else self.device.spec.memory_bytes // 8
        )
        self.stats = PoolStats()
        # free lists: size class -> list of device allocation ids
        self._free: Dict[int, List[int]] = defaultdict(list)

    # ------------------------------------------------------------------
    def allocate(self, nbytes: int) -> PooledAllocation:
        """Allocate a block of at least *nbytes*."""
        cls = size_class(nbytes)
        self.stats.allocations += 1
        self.stats.bytes_requested += nbytes
        free_list = self._free[cls]
        if free_list:
            allocation_id = free_list.pop()
            self.stats.hits += 1
            self.stats.bytes_held -= cls
        else:
            allocation_id = self.device.allocate(cls)
            self.stats.misses += 1
        handle = PooledAllocation(self, cls, nbytes, allocation_id)
        return handle

    def _return_block(self, handle: PooledAllocation) -> None:
        self.stats.releases += 1
        # a recycled block must never carry the previous tenant's content
        # digest, or the next verify sweep would flag reuse as corruption
        self.device.forget_buffer(handle._device_id)
        if self.stats.bytes_held + handle.class_bytes <= self.max_cached_bytes:
            self._free[handle.class_bytes].append(handle._device_id)
            self.stats.bytes_held += handle.class_bytes
        else:
            self.device.free(handle._device_id)

    def trim(self) -> int:
        """Return all cached blocks to the device; returns bytes freed."""
        freed = 0
        for cls, ids in self._free.items():
            for allocation_id in ids:
                self.device.free(allocation_id)
                freed += cls
            ids.clear()
        self.stats.bytes_held = 0
        return freed

    def cached_blocks(self) -> Dict[int, int]:
        """``{size_class: count}`` of blocks currently cached."""
        return {cls: len(ids) for cls, ids in self._free.items() if ids}
