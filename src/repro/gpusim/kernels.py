"""Kernel-launch abstraction with CUDA-like grid/block semantics.

GSAP's kernels are expressed here as *vectorized bodies*: a function of
the flat thread-index array.  :func:`launch` computes the launch geometry
(grid size from the logical thread count and a block size), charges the
device cost model, and invokes the body once with ``tid = arange(n)`` —
the data-parallel semantics of a CUDA launch without per-thread Python
overhead.

Example
-------
>>> import numpy as np
>>> from repro.gpusim.device import Device, TINY_DEVICE
>>> dev = Device(TINY_DEVICE)
>>> out = np.zeros(8, dtype=np.int64)
>>> def body(tid):
...     out[tid] = tid * 2
>>> launch(dev, "double", 8, body)
LaunchInfo(grid_dim=1, block_dim=256, num_threads=8)
>>> out
array([ 0,  2,  4,  6,  8, 10, 12, 14])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import KernelLaunchError
from .device import Device, KernelCost

DEFAULT_BLOCK_DIM = 256
MAX_GRID_DIM = 2**31 - 1


@dataclass(frozen=True)
class LaunchInfo:
    """Geometry of one kernel launch."""

    grid_dim: int
    block_dim: int
    num_threads: int


def launch_geometry(num_threads: int, block_dim: int = DEFAULT_BLOCK_DIM) -> LaunchInfo:
    """Compute grid/block dimensions for a logical thread count."""
    if num_threads < 0:
        raise KernelLaunchError(f"num_threads must be >= 0, got {num_threads}")
    if not (1 <= block_dim <= 1024):
        raise KernelLaunchError(f"block_dim must be in [1, 1024], got {block_dim}")
    grid_dim = max(1, -(-num_threads // block_dim))
    if grid_dim > MAX_GRID_DIM:
        raise KernelLaunchError(f"grid dimension {grid_dim} exceeds device limit")
    return LaunchInfo(grid_dim=grid_dim, block_dim=block_dim, num_threads=num_threads)


def launch(
    device: Device,
    name: str,
    num_threads: int,
    body: Callable[[np.ndarray], None],
    block_dim: int = DEFAULT_BLOCK_DIM,
    ops_per_thread: float = 1.0,
    bytes_moved: Optional[int] = None,
    phase: Optional[str] = None,
) -> LaunchInfo:
    """Launch a vectorized kernel *body* over ``num_threads`` threads.

    The body receives the flat thread-id array (``np.arange(num_threads)``)
    and performs its effect through closure state — exactly the shape of a
    CUDA kernel reading ``blockIdx.x * blockDim.x + threadIdx.x``.
    """
    info = launch_geometry(num_threads, block_dim)
    if num_threads == 0:
        return info
    cost = KernelCost(
        work_items=num_threads, ops_per_item=ops_per_thread, bytes_moved=bytes_moved
    )

    def run() -> None:
        tid = np.arange(num_threads, dtype=np.int64)
        body(tid)

    device.execute(name, cost, run, phase=phase)
    return info
