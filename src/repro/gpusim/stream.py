"""Streams and events for the simulated device.

Real GSAP overlaps the three cuRAND table builds on concurrent streams
(paper Fig. 4).  The simulated device executes kernels eagerly, but
streams still model the *timeline*: each stream tracks its own simulated
completion time, concurrent streams overlap, and
:meth:`Device`-level synchronization takes the max across streams.  This
is what lets the cost model credit GSAP for the overlapped table builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from ..errors import DeviceError
from .device import Device, KernelCost, get_default_device

T = TypeVar("T")


@dataclass
class Event:
    """A point on a stream's simulated timeline."""

    timestamp_s: float

    def elapsed_since(self, earlier: "Event") -> float:
        return self.timestamp_s - earlier.timestamp_s


class Stream:
    """An ordered queue of kernels with its own simulated timeline."""

    def __init__(self, device: Optional[Device] = None) -> None:
        self.device = device or get_default_device()
        self._completion_time_s = 0.0

    @property
    def completion_time_s(self) -> float:
        """Simulated time at which all enqueued work has finished."""
        return self._completion_time_s

    def launch(
        self,
        name: str,
        cost: KernelCost,
        body: Callable[[], T],
        phase: Optional[str] = None,
    ) -> T:
        """Execute *body* on this stream, advancing its timeline."""
        injector = getattr(self.device, "fault_injector", None)
        if injector is not None:
            injector.on_stream_launch(name, phase)
        before = self.device.sim_time_s
        result = self.device.execute(name, cost, body, phase=phase)
        duration = self.device.sim_time_s - before
        self._completion_time_s = max(
            self._completion_time_s, self._start_floor()
        ) + duration
        return result

    def _start_floor(self) -> float:
        # Work on a stream cannot start before previously-enqueued work on
        # the same stream has completed; it *can* overlap other streams.
        return self._completion_time_s

    def record_event(self) -> Event:
        return Event(timestamp_s=self._completion_time_s)

    def wait_event(self, event: Event) -> None:
        """Order this stream's subsequent work after *event*."""
        self._completion_time_s = max(self._completion_time_s, event.timestamp_s)

    def synchronize(self) -> float:
        """Return this stream's completion time (no host blocking to model)."""
        return self._completion_time_s


def overlap_time_s(*streams: Stream) -> float:
    """Simulated makespan of concurrent streams (max completion time)."""
    if not streams:
        raise DeviceError("overlap_time_s needs at least one stream")
    return max(s.completion_time_s for s in streams)
