"""Device memory: :class:`DeviceArray` and host<->device transfers.

A :class:`DeviceArray` owns a NumPy buffer that *represents* device-resident
data.  Creating one from host data charges an H2D transfer on the device's
simulated clock; :meth:`DeviceArray.to_host` charges D2H.  Kernel bodies
operate on the underlying ``.data`` buffers directly — by convention only
code running under :meth:`Device.execute` touches them.
"""

from __future__ import annotations

import weakref
from typing import Optional, Sequence

import numpy as np

from ..errors import DeviceError
from .device import Device, get_default_device


class DeviceArray:
    """An array resident in (simulated) device memory.

    Notes
    -----
    The wrapper intentionally does **not** implement arithmetic operators:
    device data is only manipulated through kernels and the primitives
    library, mirroring how real GPU code is structured.
    """

    __slots__ = ("_data", "_device", "_allocation_id", "__weakref__")

    def __init__(self, data: np.ndarray, device: Device, _transfer: bool = True):
        self._data = np.ascontiguousarray(data)
        self._device = device
        self._allocation_id = device.allocate(self._data.nbytes)
        if _transfer:
            try:
                device.charge_transfer(self._data.nbytes, "h2d")
            except BaseException:
                # don't leak simulated memory when the upload faults
                # (e.g. an injected transfer failure mid-fault-storm)
                device.free(self._allocation_id)
                raise
        device.register_buffer(self._allocation_id, self._data)
        weakref.finalize(self, device.free, self._allocation_id)

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The raw device buffer (kernel-side view)."""
        return self._data

    @property
    def device(self) -> Device:
        return self._device

    @property
    def shape(self) -> tuple:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceArray(shape={self._data.shape}, dtype={self._data.dtype}, "
            f"device={self._device.spec.name!r})"
        )

    # ------------------------------------------------------------------
    def to_host(self) -> np.ndarray:
        """Copy the array back to host memory (charges a D2H transfer)."""
        self._device.charge_transfer(self._data.nbytes, "d2h")
        return self._data.copy()

    def copy(self) -> "DeviceArray":
        """Device-to-device copy (no PCIe charge)."""
        return DeviceArray(self._data.copy(), self._device, _transfer=False)

    def refresh_digest(self) -> None:
        """Re-register this buffer's content digest after a kernel wrote it.

        No-op when the device is not tracking digests.  Kernels that
        mutate a tracked buffer in place must call this, otherwise the
        next :meth:`Device.verify_buffers` sweep reports the write as
        corruption.
        """
        self._device.refresh_digest(self._allocation_id)

    def free(self) -> None:
        """Explicitly release the device allocation (optional)."""
        self._device.free(self._allocation_id)


def to_device(
    host_data: np.ndarray | Sequence, device: Optional[Device] = None
) -> DeviceArray:
    """Upload host data to the device (charges H2D on the sim clock)."""
    device = device or get_default_device()
    return DeviceArray(np.asarray(host_data), device)


def device_empty(
    shape: tuple | int, dtype, device: Optional[Device] = None
) -> DeviceArray:
    """Allocate an uninitialised device array (no transfer charged)."""
    device = device or get_default_device()
    return DeviceArray(np.empty(shape, dtype=dtype), device, _transfer=False)


def device_zeros(
    shape: tuple | int, dtype, device: Optional[Device] = None
) -> DeviceArray:
    """Allocate a zero-filled device array (no transfer charged)."""
    device = device or get_default_device()
    return DeviceArray(np.zeros(shape, dtype=dtype), device, _transfer=False)


def ensure_same_device(*arrays: DeviceArray) -> Device:
    """Assert all arrays live on one device and return it."""
    if not arrays:
        raise DeviceError("ensure_same_device needs at least one array")
    device = arrays[0].device
    for arr in arrays[1:]:
        if arr.device is not device:
            raise DeviceError("arrays live on different devices")
    return device
