"""Statistically-gated comparison of two bench records.

The comparator diffs a candidate record against a baseline at two
granularities:

* **workload** — end-to-end ``runtime_s`` (and simulated device time)
  per workload key;
* **kernel** — per-``phase/kernel`` wall time inside each workload, so
  a regression report can say *"segmented_reduce in vertex_move got
  1.4× slower even though total runtime held"*.

A verdict is ``regression``/``improvement`` only when **both** gates
fire: the median ratio clears the tolerance *and* the Mann–Whitney
rank test reaches significance (``p <= alpha``).  Requiring both keeps
A/A comparisons of identical code robustly ``neutral`` (their ratio
sits inside the tolerance band even when tiny samples make rank tests
twitchy) while a genuine slowdown moves ratio and ranks together.

Kernels faster than ``min_kernel_s`` (median, per run) are skipped:
micro-kernel wall times are dominated by scheduler noise and would
otherwise spray false verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..envinfo import fingerprint_mismatches
from .record import workload_index
from .stats import Comparison, compare_samples

REGRESSION = "regression"
IMPROVEMENT = "improvement"
NEUTRAL = "neutral"


@dataclass(frozen=True)
class CompareOptions:
    """Gate thresholds; defaults documented in docs/observability.md."""

    #: relative tolerance on the workload runtime median ratio:
    #: candidate/baseline beyond ``1 + tolerance`` may regress
    tolerance: float = 0.25
    #: relative tolerance for per-kernel wall-time ratios (wider —
    #: kernel wall times are noisier than end-to-end runtimes)
    kernel_tolerance: float = 0.50
    #: significance level for the Mann–Whitney gate
    alpha: float = 0.10
    #: kernels below this median wall seconds per run are not judged
    min_kernel_s: float = 2e-3
    #: bootstrap resamples for confidence intervals
    n_boot: int = 2000
    #: confidence level for reported intervals
    confidence: float = 0.95


@dataclass
class Verdict:
    """One judged comparison (a workload metric or one kernel)."""

    scope: str        # "workload" | "kernel"
    workload: str     # workload key
    subject: str      # metric name or "phase/kernel"
    verdict: str      # regression | improvement | neutral
    comparison: Comparison

    @property
    def ratio(self) -> float:
        return self.comparison.ratio

    def describe(self) -> str:
        c = self.comparison
        lo, hi = c.ratio_ci
        return (
            f"{self.workload} {self.subject}: {c.ratio:.2f}x "
            f"(CI [{lo:.2f}, {hi:.2f}], p={c.p_value:.3f}, "
            f"median {c.baseline.median:.4g}s -> {c.candidate.median:.4g}s)"
        )

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "workload": self.workload,
            "subject": self.subject,
            "verdict": self.verdict,
            **self.comparison.to_dict(),
        }


@dataclass
class CompareReport:
    """Everything ``gsap perf compare`` renders and gates on."""

    verdicts: List[Verdict] = field(default_factory=list)
    environment_warnings: List[str] = field(default_factory=list)
    missing_workloads: List[str] = field(default_factory=list)
    new_workloads: List[str] = field(default_factory=list)
    #: advisory drift notes on the scaling curves (single measurements
    #: per point — no statistical gate, so they never fail the run)
    scaling_warnings: List[str] = field(default_factory=list)
    options: CompareOptions = field(default_factory=CompareOptions)

    @property
    def regressions(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.verdict == REGRESSION]

    @property
    def improvements(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.verdict == IMPROVEMENT]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> dict:
        return {
            "schema": "gsap-perf-compare/1",
            "options": {
                "tolerance": self.options.tolerance,
                "kernel_tolerance": self.options.kernel_tolerance,
                "alpha": self.options.alpha,
                "min_kernel_s": self.options.min_kernel_s,
            },
            "environment_warnings": list(self.environment_warnings),
            "missing_workloads": list(self.missing_workloads),
            "new_workloads": list(self.new_workloads),
            "scaling_warnings": list(self.scaling_warnings),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def _judge(
    comparison: Comparison, tolerance: float, alpha: float
) -> str:
    significant = comparison.p_value <= alpha
    if comparison.ratio >= 1.0 + tolerance and significant:
        return REGRESSION
    if comparison.ratio <= 1.0 / (1.0 + tolerance) and significant:
        return IMPROVEMENT
    return NEUTRAL


def _compare_scaling(
    baseline: dict, candidate: dict, tolerance: float
) -> List[str]:
    """Advisory diff of the optional ``scaling`` curve sections.

    Each point carries one measurement (a strong-scaling sweep runs a
    rank count once), so there is no distribution to rank-test —
    drift beyond the tolerance is reported as a warning rather than a
    gating verdict.
    """
    base = baseline.get("scaling")
    cand = candidate.get("scaling")
    warnings: List[str] = []
    if not base or not cand:
        return warnings
    if base.get("dimension") != cand.get("dimension"):
        return [
            f"scaling dimensions differ "
            f"({base.get('dimension')!r} vs {cand.get('dimension')!r}); "
            f"curves not compared"
        ]
    base_points = {p["value"]: p for p in base.get("points", [])}
    cand_points = {p["value"]: p for p in cand.get("points", [])}
    for value in sorted(set(base_points) & set(cand_points)):
        bp, cp = base_points[value], cand_points[value]
        for key in sorted(set(bp) & set(cp) - {"value"}):
            b, c = bp.get(key), cp.get(key)
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            if b <= 0:
                continue
            ratio = c / b
            # lower is worse for speedup/efficiency; higher is worse
            # for imbalance and raw times
            worse = (
                ratio < 1.0 / (1.0 + tolerance)
                if key in ("speedup", "efficiency")
                else ratio > 1.0 + tolerance
            )
            if worse:
                warnings.append(
                    f"scaling {base['dimension']}={value:g}: {key} "
                    f"{b:.4g} -> {c:.4g} ({ratio:.2f}x)"
                )
    return warnings


def _sample_pairs(
    base_wl: dict, cand_wl: dict
) -> List[Tuple[str, Sequence[float], Sequence[float]]]:
    """Workload-level metric sample pairs present on both sides."""
    pairs = []
    for metric in ("runtime_s", "sim_time_s"):
        a = (base_wl.get("samples") or {}).get(metric)
        b = (cand_wl.get("samples") or {}).get(metric)
        if a and b and (max(a) > 0 or max(b) > 0):
            pairs.append((metric, a, b))
    return pairs


def compare_records(
    baseline: dict,
    candidate: dict,
    options: Optional[CompareOptions] = None,
) -> CompareReport:
    """Diff *candidate* against *baseline* at workload + kernel level."""
    opts = options or CompareOptions()
    report = CompareReport(options=opts)
    report.environment_warnings = fingerprint_mismatches(
        baseline.get("environment"), candidate.get("environment")
    )
    base_idx = workload_index(baseline)
    cand_idx = workload_index(candidate)
    report.missing_workloads = sorted(set(base_idx) - set(cand_idx))
    report.new_workloads = sorted(set(cand_idx) - set(base_idx))
    report.scaling_warnings = _compare_scaling(
        baseline, candidate, opts.tolerance
    )

    for key in (k for k in base_idx if k in cand_idx):
        base_wl, cand_wl = base_idx[key], cand_idx[key]
        for metric, base_samples, cand_samples in _sample_pairs(
            base_wl, cand_wl
        ):
            comparison = compare_samples(
                base_samples, cand_samples,
                confidence=opts.confidence, n_boot=opts.n_boot,
            )
            report.verdicts.append(Verdict(
                scope="workload", workload=key, subject=metric,
                verdict=_judge(comparison, opts.tolerance, opts.alpha),
                comparison=comparison,
            ))

        base_kernels: Dict[str, dict] = base_wl.get("kernels") or {}
        cand_kernels: Dict[str, dict] = cand_wl.get("kernels") or {}
        for kname in sorted(set(base_kernels) & set(cand_kernels)):
            a = base_kernels[kname].get("wall_s") or []
            b = cand_kernels[kname].get("wall_s") or []
            if not a or not b:
                continue
            if (
                float(np.median(a)) < opts.min_kernel_s
                and float(np.median(b)) < opts.min_kernel_s
            ):
                continue
            comparison = compare_samples(
                a, b, confidence=opts.confidence, n_boot=opts.n_boot
            )
            report.verdicts.append(Verdict(
                scope="kernel", workload=key, subject=kname,
                verdict=_judge(
                    comparison, opts.kernel_tolerance, opts.alpha
                ),
                comparison=comparison,
            ))
    return report


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_ICON = {REGRESSION: "✗", IMPROVEMENT: "✓", NEUTRAL: "·"}


def compare_markdown(report: CompareReport) -> str:
    """Human-readable comparison: verdict tables plus the gate summary."""
    lines: List[str] = ["# Perf comparison", ""]
    if report.environment_warnings:
        lines.append(
            "**Warning — cross-environment comparison** "
            "(timings may not be commensurable):"
        )
        for warning in report.environment_warnings:
            lines.append(f"- {warning}")
        lines.append("")
    if report.missing_workloads:
        lines.append(
            f"Workloads missing from candidate: "
            f"{', '.join(report.missing_workloads)}"
        )
    if report.new_workloads:
        lines.append(
            f"Workloads new in candidate (not judged): "
            f"{', '.join(report.new_workloads)}"
        )
    if report.missing_workloads or report.new_workloads:
        lines.append("")
    if report.scaling_warnings:
        lines.append("Scaling-curve drift (advisory — single measurements):")
        for warning in report.scaling_warnings:
            lines.append(f"- {warning}")
        lines.append("")

    workload_rows = [v for v in report.verdicts if v.scope == "workload"]
    if workload_rows:
        lines += [
            "## Workloads",
            "",
            "| workload | metric | ratio | 95% CI | p | verdict |",
            "|---|---|---:|---:|---:|---|",
        ]
        for v in workload_rows:
            c = v.comparison
            lo, hi = c.ratio_ci
            lines.append(
                f"| {v.workload} | {v.subject} | {c.ratio:.3f}x | "
                f"[{lo:.3f}, {hi:.3f}] | {c.p_value:.3f} | "
                f"{_ICON[v.verdict]} {v.verdict} |"
            )
        lines.append("")

    kernel_rows = [v for v in report.verdicts if v.scope == "kernel"]
    interesting = [v for v in kernel_rows if v.verdict != NEUTRAL]
    if kernel_rows:
        lines += [
            "## Kernels",
            "",
            f"{len(kernel_rows)} phase/kernel pairs judged; "
            f"{len(interesting)} moved beyond the "
            f"{report.options.kernel_tolerance:.0%} tolerance.",
            "",
        ]
    if interesting:
        lines += [
            "| workload | phase/kernel | ratio | 95% CI | p | verdict |",
            "|---|---|---:|---:|---:|---|",
        ]
        for v in sorted(
            interesting, key=lambda v: v.ratio, reverse=True
        ):
            c = v.comparison
            lo, hi = c.ratio_ci
            lines.append(
                f"| {v.workload} | {v.subject} | {c.ratio:.3f}x | "
                f"[{lo:.3f}, {hi:.3f}] | {c.p_value:.3f} | "
                f"{_ICON[v.verdict]} {v.verdict} |"
            )
        lines.append("")

    lines.append("## Verdict")
    lines.append("")
    if report.has_regressions:
        lines.append(
            f"**{len(report.regressions)} regression(s) detected:**"
        )
        for v in report.regressions:
            lines.append(f"- {v.describe()}")
    else:
        lines.append("No regressions detected.")
    if report.improvements:
        lines.append("")
        lines.append(f"{len(report.improvements)} improvement(s):")
        for v in report.improvements:
            lines.append(f"- {v.describe()}")
    return "\n".join(lines) + "\n"
