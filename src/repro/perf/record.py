"""The versioned :data:`BENCH_RECORD_SCHEMA` bench-record format.

A bench record is the unit every performance measurement in this repo
flows through: one JSON document holding the workload matrix that was
run, the environment it ran in, and — per workload — the *raw
per-repeat samples* (never just a mean) for runtime, simulated device
time, per-phase timings, per-kernel attribution and quality metrics.
Raw samples are the non-negotiable part: the stats layer
(:mod:`repro.perf.stats`) needs them for bootstrap intervals and rank
tests, and a record that stored only summaries could never be
re-analysed with a better method later.

Schema sketch (version ``gsap-bench-record/1``)::

    {
      "schema": "gsap-bench-record/1",
      "label": "quick-baseline",
      "scale": "quick",
      "seed": 0,
      "repeats": 5,
      "warmup": 1,
      "created": "2026-08-06T12:00:00+00:00",
      "environment": {...},              # repro.envinfo fingerprint
      "workloads": [
        {
          "key": "GSAP/low_low/200",
          "algorithm": "GSAP", "category": "low_low",
          "num_vertices": 200, "num_edges": 1598, "variant": "",
          "samples": {"runtime_s": [...], "sim_time_s": [...]},
          "phases":  {"block_merge_s": [...], ...},
          "kernels": {"vertex_move/segmented_reduce": {
              "wall_s": [...], "sim_s": [...], "launches": [...],
              "work_items": [...], "bytes_moved": [...]}},
          "quality": {"mdl": [...], "nmi": [...], "ari": [...],
                      "num_blocks": [...]},
          "tracer":  {"spans": 123, "phase_s": {...}} | null
        }
      ],
      "scaling": {                        # optional strong/weak-scaling curve
        "dimension": "ranks",
        "points": [
          {"value": 4, "speedup": 3.1, "efficiency": 0.77,
           "imbalance": 1.12, ...}
        ]
      }
    }

Every list under ``samples``/``phases``/``quality`` has one entry per
retained repeat (warmup repeats are discarded before recording).
Kernel keys are ``phase/kernel_name`` so a diff can distinguish
``vertex_move/segmented_reduce`` from the same primitive launched
during block-merge.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..envinfo import environment_fingerprint
from ..errors import ReproError

PathLike = Union[str, os.PathLike]

BENCH_RECORD_SCHEMA = "gsap-bench-record/1"

#: sample families a workload may carry, with their required-ness
_SAMPLE_KEYS = ("runtime_s", "sim_time_s")
_QUALITY_KEYS = ("mdl", "nmi", "ari", "num_blocks")
_KERNEL_KEYS = ("wall_s", "sim_s", "launches", "work_items", "bytes_moved")


class BenchRecordError(ReproError):
    """A bench record failed schema validation."""

    def __init__(self, message: str, problems: Optional[List[str]] = None):
        super().__init__(message)
        self.problems = list(problems or [])


def new_record(
    *,
    label: str = "",
    seed: int = 0,
    repeats: int = 1,
    warmup: int = 0,
    scale: Optional[str] = None,
    environment: Optional[dict] = None,
    created: Optional[str] = None,
) -> dict:
    """A fresh, empty record carrying provenance but no workloads yet."""
    if scale is None:
        scale = os.environ.get("GSAP_BENCH_SCALE", "quick")
    return {
        "schema": BENCH_RECORD_SCHEMA,
        "label": label,
        "scale": scale,
        "seed": int(seed),
        "repeats": int(repeats),
        "warmup": int(warmup),
        "created": created or datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "environment": (
            environment if environment is not None
            else environment_fingerprint()
        ),
        "workloads": [],
    }


def new_workload(
    *,
    key: str,
    algorithm: str,
    category: str = "",
    num_vertices: int = 0,
    num_edges: int = 0,
    variant: str = "",
) -> dict:
    """A fresh workload entry with empty sample families."""
    return {
        "key": key,
        "algorithm": algorithm,
        "category": category,
        "num_vertices": int(num_vertices),
        "num_edges": int(num_edges),
        "variant": variant,
        "samples": {"runtime_s": [], "sim_time_s": []},
        "phases": {},
        "kernels": {},
        "quality": {},
        "tracer": None,
    }


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _check_samples(label: str, values, problems: List[str]) -> None:
    if not isinstance(values, list) or not values:
        problems.append(f"{label}: must be a non-empty list of samples")
        return
    for v in values:
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            problems.append(f"{label}: non-numeric sample {v!r}")
            return


def validate_record(record) -> List[str]:
    """Validate *record* against the schema; return a list of problems.

    An empty list means the record conforms.  Validation is structural
    — it checks shape, versions and sample-list consistency, not
    whether the numbers are plausible.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    schema = record.get("schema")
    if schema != BENCH_RECORD_SCHEMA:
        problems.append(
            f"schema: expected {BENCH_RECORD_SCHEMA!r}, got {schema!r}"
        )
        return problems
    for field, typ in (
        ("label", str), ("scale", str), ("seed", int),
        ("repeats", int), ("warmup", int),
    ):
        if not isinstance(record.get(field), typ):
            problems.append(f"{field}: missing or not {typ.__name__}")
    environment = record.get("environment")
    if not isinstance(environment, dict):
        problems.append("environment: missing fingerprint object")
    workloads = record.get("workloads")
    if not isinstance(workloads, list):
        problems.append("workloads: missing list")
        return problems
    seen_keys = set()
    for i, wl in enumerate(workloads):
        where = f"workloads[{i}]"
        if not isinstance(wl, dict):
            problems.append(f"{where}: not an object")
            continue
        key = wl.get("key")
        if not isinstance(key, str) or not key:
            problems.append(f"{where}.key: missing")
        elif key in seen_keys:
            problems.append(f"{where}.key: duplicate workload key {key!r}")
        else:
            seen_keys.add(key)
        if not isinstance(wl.get("algorithm"), str):
            problems.append(f"{where}.algorithm: missing")
        samples = wl.get("samples")
        if not isinstance(samples, dict):
            problems.append(f"{where}.samples: missing object")
            continue
        _check_samples(f"{where}.samples.runtime_s",
                       samples.get("runtime_s"), problems)
        n = len(samples.get("runtime_s") or [])
        for fam_name, fam, required in (
            ("samples", samples, _SAMPLE_KEYS),
            ("phases", wl.get("phases") or {}, ()),
            ("quality", wl.get("quality") or {}, ()),
        ):
            if not isinstance(fam, dict):
                problems.append(f"{where}.{fam_name}: not an object")
                continue
            for sub, values in fam.items():
                if values is None:
                    continue
                _check_samples(f"{where}.{fam_name}.{sub}", values, problems)
                if isinstance(values, list) and n and len(values) != n:
                    problems.append(
                        f"{where}.{fam_name}.{sub}: {len(values)} samples, "
                        f"expected {n} (one per repeat)"
                    )
        kernels = wl.get("kernels")
        if kernels is None:
            kernels = {}
        if not isinstance(kernels, dict):
            problems.append(f"{where}.kernels: not an object")
            kernels = {}
        for kname, stats in kernels.items():
            if not isinstance(stats, dict):
                problems.append(f"{where}.kernels[{kname!r}]: not an object")
                continue
            for sub in _KERNEL_KEYS:
                values = stats.get(sub)
                if values is None:
                    continue
                _check_samples(
                    f"{where}.kernels[{kname!r}].{sub}", values, problems
                )
        tracer = wl.get("tracer")
        if tracer is not None and not isinstance(tracer, dict):
            problems.append(f"{where}.tracer: must be null or an object")
    _check_scaling(record.get("scaling"), problems)
    return problems


def _check_scaling(scaling, problems: List[str]) -> None:
    """Validate the optional per-rank/scaling section.

    ``scaling.dimension`` names the swept axis (``"ranks"``);
    ``scaling.points`` is a list of objects each carrying a numeric
    ``value`` (the axis position) plus free-form numeric curve fields
    (``speedup``, ``efficiency``, ``imbalance``, ...).  Point values
    must be unique and ascending so curves diff positionally.
    """
    if scaling is None:
        return
    if not isinstance(scaling, dict):
        problems.append("scaling: must be an object")
        return
    if not isinstance(scaling.get("dimension"), str) or not scaling["dimension"]:
        problems.append("scaling.dimension: missing or not a string")
    points = scaling.get("points")
    if not isinstance(points, list) or not points:
        problems.append("scaling.points: must be a non-empty list")
        return
    last_value = None
    for i, point in enumerate(points):
        where = f"scaling.points[{i}]"
        if not isinstance(point, dict):
            problems.append(f"{where}: not an object")
            continue
        value = point.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{where}.value: missing or non-numeric")
            continue
        if last_value is not None and value <= last_value:
            problems.append(
                f"{where}.value: {value} not strictly greater than the "
                f"previous point ({last_value})"
            )
        last_value = value
        for key, v in point.items():
            if key == "value" or v is None:
                continue
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                problems.append(f"{where}.{key}: non-numeric value {v!r}")


def assert_valid(record, *, source: str = "bench record") -> dict:
    """Raise :class:`BenchRecordError` unless *record* conforms."""
    problems = validate_record(record)
    if problems:
        detail = "; ".join(problems[:8])
        if len(problems) > 8:
            detail += f"; ... {len(problems) - 8} more"
        raise BenchRecordError(
            f"{source} failed schema validation: {detail}", problems
        )
    return record


# ----------------------------------------------------------------------
# i/o
# ----------------------------------------------------------------------
def write_record(record: dict, path: PathLike) -> Path:
    """Validate and write a record as pretty-printed JSON."""
    assert_valid(record, source=str(path))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


def load_record(path: PathLike) -> dict:
    """Load and validate a record; raises :class:`BenchRecordError`."""
    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise BenchRecordError(f"cannot read bench record {path}: {err}")
    return assert_valid(record, source=str(path))


def workload_index(record: dict) -> Dict[str, dict]:
    """Workloads keyed by their ``key`` field."""
    return {wl["key"]: wl for wl in record.get("workloads", [])}
