"""The repeat-*k* benchmark runner feeding bench records.

Wraps the existing :class:`~repro.bench.harness.BenchHarness` workload
definitions (:class:`~repro.bench.workloads.WorkloadSpec`) with the
measurement discipline the one-shot harness lacks:

* **warmup discard** — the first ``warmup`` executions of every
  workload never enter the record (they pay import, allocator and
  cache-warming costs);
* **repeat-k sampling** — every retained execution contributes one raw
  sample per metric; nothing is averaged at collection time;
* **interleaved ordering** — executions are scheduled round-robin
  across workloads (repeat 0 of every workload, then repeat 1, ...),
  so slow environmental drift (thermal throttling, a background
  process) biases all workloads — and in particular both sides of an
  A/B variant pair — equally instead of landing on whichever workload
  ran last;
* **full attribution** — per-phase timings from the run result and the
  ``obs`` tracer, per-kernel time/work-items/bytes from the simulated
  device's profiler (keyed ``phase/kernel``), and quality metrics
  (MDL/NMI/ARI) against the dataset's planted truth.

Each execution gets a *fresh* partitioner and device so profiler state
never leaks across repeats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bench.harness import make_partitioner
from ..bench.workloads import WorkloadSpec, bench_config, bench_scale
from ..config import SBPConfig
from ..graph.datasets import load_dataset
from ..metrics import ari, nmi
from .record import new_record, new_workload

#: the CI perf-gate workload set: GSAP on a spread of categories at
#: quick-scale sizes, small enough for repeat-k sampling in CI minutes
GATE_SPECS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec("low_low", 200, "GSAP"),
    WorkloadSpec("low_low", 500, "GSAP"),
    WorkloadSpec("high_high", 200, "GSAP"),
)


@dataclass(frozen=True)
class PerfWorkload:
    """One observatory workload: a bench spec plus an optional variant.

    ``variant`` distinguishes A/B arms of the same spec (for example
    ``incremental`` vs ``rebuild`` maintenance); ``configure``
    transforms the base config for this arm.
    """

    spec: WorkloadSpec
    variant: str = ""
    configure: Optional[Callable[[SBPConfig], SBPConfig]] = field(
        default=None, compare=False
    )

    @property
    def key(self) -> str:
        return f"{self.spec.key}#{self.variant}" if self.variant else self.spec.key


def gate_workloads() -> List[PerfWorkload]:
    """The default perf-gate suite."""
    return [PerfWorkload(spec) for spec in GATE_SPECS]


def _kernel_table(profiler) -> Dict[str, dict]:
    """Per-(phase, kernel) totals of one run, from the device profiler."""
    table: Dict[str, dict] = {}
    if profiler is None:
        return table
    for rec in profiler.kernel_records:
        key = f"{rec.phase}/{rec.name}"
        entry = table.setdefault(
            key,
            {"wall_s": 0.0, "sim_s": 0.0, "launches": 0,
             "work_items": 0, "bytes_moved": 0},
        )
        entry["wall_s"] += rec.wall_time_s
        entry["sim_s"] += rec.sim_time_s
        entry["launches"] += 1
        entry["work_items"] += rec.work_items
        entry["bytes_moved"] += rec.bytes_moved
    return table


def _tracer_phases(obs) -> Optional[dict]:
    """Aggregate phase-category span durations from the obs tracer."""
    if obs is None or not getattr(obs, "enabled", False):
        return None
    totals: Dict[str, float] = {}
    count = 0
    for span in obs.tracer.spans():
        count += 1
        if span.category != "phase":
            continue
        duration = span.duration_s
        if duration is None:
            continue
        totals[span.name] = totals.get(span.name, 0.0) + duration
    return {"spans": count, "phase_s": totals}


def run_workloads(
    workloads: Sequence[PerfWorkload],
    *,
    repeats: int = 5,
    warmup: int = 1,
    seed: int = 0,
    label: str = "",
    config: Optional[SBPConfig] = None,
    collect_obs: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    trace_out: Optional[str] = None,
) -> dict:
    """Run every workload ``warmup + repeats`` times; return a record.

    ``config`` overrides the base bench configuration (defaults to
    :func:`~repro.bench.workloads.bench_config` at the active scale).
    With ``collect_obs=False`` runs execute with observability disabled
    (the ``NULL_OBS`` path): records then carry ``tracer: null`` but
    remain schema-valid.  ``trace_out`` writes a Chrome trace of the
    last traced run (the CI perf-gate uploads it as an artifact).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    base_config = config if config is not None else bench_config(seed)
    if collect_obs:
        base_config = base_config.replace(
            observability=base_config.observability.replace(enabled=True)
        )

    record = new_record(
        label=label, seed=seed, repeats=repeats, warmup=warmup,
        scale=bench_scale(),
    )
    entries: Dict[str, dict] = {}
    datasets: Dict[Tuple[str, int], tuple] = {}
    last_obs = None

    # interleaved schedule: iteration r of every workload before r+1
    for repeat_idx in range(warmup + repeats):
        retained = repeat_idx >= warmup
        for wl in workloads:
            spec = wl.spec
            ds_key = (spec.category, spec.num_vertices)
            if ds_key not in datasets:
                datasets[ds_key] = load_dataset(spec.category, spec.num_vertices)
            graph, truth = datasets[ds_key]
            run_config = base_config
            if wl.configure is not None:
                run_config = wl.configure(run_config)
            partitioner = make_partitioner(spec.algorithm, run_config)
            if progress is not None:
                kind = "warmup" if not retained else f"repeat {repeat_idx - warmup + 1}/{repeats}"
                progress(f"{wl.key}: {kind}")
            t0 = time.perf_counter()
            result = partitioner.partition(graph)
            runtime_s = time.perf_counter() - t0
            if not retained:
                continue

            entry = entries.get(wl.key)
            if entry is None:
                entry = new_workload(
                    key=wl.key,
                    algorithm=spec.algorithm,
                    category=spec.category,
                    num_vertices=spec.num_vertices,
                    num_edges=graph.num_edges,
                    variant=wl.variant,
                )
                entries[wl.key] = entry
                record["workloads"].append(entry)

            entry["samples"]["runtime_s"].append(runtime_s)
            entry["samples"]["sim_time_s"].append(result.sim_time_s)
            for name, value in result.timings.breakdown().items():
                entry["phases"].setdefault(name, []).append(value)
            quality = entry["quality"]
            quality.setdefault("mdl", []).append(result.mdl)
            quality.setdefault("num_blocks", []).append(result.num_blocks)
            quality.setdefault("nmi", []).append(nmi(result.partition, truth))
            quality.setdefault("ari", []).append(ari(result.partition, truth))

            profiler = getattr(
                getattr(partitioner, "device", None), "profiler", None
            )
            # samples recorded for this workload *before* this repeat;
            # a kernel first seen now (e.g. after a degradation rung)
            # back-fills zeros so every list stays one-sample-per-repeat
            prior = len(entry["samples"]["runtime_s"]) - 1
            for key, stats in _kernel_table(profiler).items():
                bucket = entry["kernels"].get(key)
                if bucket is None:
                    bucket = {
                        "wall_s": [0.0] * prior, "sim_s": [0.0] * prior,
                        "launches": [0] * prior, "work_items": [0] * prior,
                        "bytes_moved": [0] * prior,
                    }
                    entry["kernels"][key] = bucket
                bucket["wall_s"].append(stats["wall_s"])
                bucket["sim_s"].append(stats["sim_s"])
                bucket["launches"].append(stats["launches"])
                bucket["work_items"].append(stats["work_items"])
                bucket["bytes_moved"].append(stats["bytes_moved"])

            obs = getattr(partitioner, "obs", None)
            tracer_summary = _tracer_phases(obs)
            if tracer_summary is not None:
                entry["tracer"] = tracer_summary
                last_obs = obs

    # kernels that vanished in later repeats: pad the tail with zeros
    for entry in record["workloads"]:
        n = len(entry["samples"]["runtime_s"])
        for stats in entry["kernels"].values():
            for sub, values in stats.items():
                fill = 0.0 if sub in ("wall_s", "sim_s") else 0
                while len(values) < n:
                    values.append(fill)
    if trace_out is not None and last_obs is not None:
        from ..obs import write_chrome_trace

        write_chrome_trace(
            last_obs.tracer, trace_out,
            metadata={"label": label, "seed": seed, "source": "gsap perf run"},
        )
    return record
