"""The performance observatory: statistically-gated benchmarking.

Turns benchmarking from one-off scripts into a first-class subsystem:

* :mod:`repro.perf.record` — the versioned bench-record schema
  (raw per-repeat samples, kernel attribution, environment
  fingerprints) plus validation and i/o;
* :mod:`repro.perf.runner` — the repeat-*k* runner with warmup discard
  and interleaved scheduling over the existing bench workloads;
* :mod:`repro.perf.stats` — bootstrap confidence intervals,
  Mann–Whitney significance, median/min-of-k summaries;
* :mod:`repro.perf.compare` — the baseline-vs-candidate comparator
  with workload- and kernel-granularity verdicts;
* :mod:`repro.perf.trajectory` — the append-only performance history
  and its Markdown trend dashboard.

CLI: ``gsap perf run | compare | trend`` (see ``docs/observability.md``).
"""

from .compare import (
    IMPROVEMENT,
    NEUTRAL,
    REGRESSION,
    CompareOptions,
    CompareReport,
    Verdict,
    compare_markdown,
    compare_records,
)
from .record import (
    BENCH_RECORD_SCHEMA,
    BenchRecordError,
    assert_valid,
    load_record,
    new_record,
    new_workload,
    validate_record,
    workload_index,
    write_record,
)
from .runner import (
    GATE_SPECS,
    PerfWorkload,
    gate_workloads,
    run_workloads,
)
from .stats import (
    Comparison,
    SampleSummary,
    bootstrap_median_ci,
    bootstrap_ratio_ci,
    cliffs_delta,
    compare_samples,
    mann_whitney,
    ratio_of_medians,
    summarize,
)
from .trajectory import (
    DEFAULT_TRAJECTORY,
    TRAJECTORY_SCHEMA,
    append_trajectory,
    load_trajectory,
    trend_markdown,
)

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "BenchRecordError",
    "CompareOptions",
    "CompareReport",
    "Comparison",
    "DEFAULT_TRAJECTORY",
    "GATE_SPECS",
    "IMPROVEMENT",
    "NEUTRAL",
    "PerfWorkload",
    "REGRESSION",
    "SampleSummary",
    "TRAJECTORY_SCHEMA",
    "Verdict",
    "append_trajectory",
    "assert_valid",
    "bootstrap_median_ci",
    "bootstrap_ratio_ci",
    "cliffs_delta",
    "compare_markdown",
    "compare_records",
    "compare_samples",
    "gate_workloads",
    "load_record",
    "load_trajectory",
    "mann_whitney",
    "new_record",
    "new_workload",
    "ratio_of_medians",
    "run_workloads",
    "summarize",
    "trend_markdown",
    "validate_record",
    "workload_index",
    "write_record",
]
