"""Statistics for benchmark comparisons: never a bare ratio of two runs.

Benchmark noise at reproduction scale (CI runners, laptop thermal
drift) easily reaches tens of percent, so the observatory reports every
comparison as *effect size plus confidence*:

* :func:`summarize` — per-sample-set location/scale summaries
  (median and min-of-k are the headline statistics; the mean is kept
  for reference but never gates anything);
* :func:`bootstrap_median_ci` / :func:`bootstrap_ratio_ci` —
  percentile-bootstrap confidence intervals with a fixed RNG seed so
  re-rendering a comparison is deterministic;
* :func:`mann_whitney` — a two-sided Mann–Whitney U rank test.  For
  the small sample counts bench runs afford (k ≤ 8 per side) the exact
  permutation null of the rank-sum statistic is enumerated — the
  normal approximation is only used beyond that, with tie correction.

The comparator combines these: a verdict requires the median ratio to
clear the tolerance *and* the rank test to reach significance, which
keeps single-outlier flukes from flagging and makes A/A comparisons
robustly neutral.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence, Tuple

import numpy as np

#: beyond this pooled sample count the exact rank permutation null is
#: replaced by the tie-corrected normal approximation
EXACT_LIMIT = 16


@dataclass(frozen=True)
class SampleSummary:
    """Location/scale summary of one sample set."""

    n: int
    mean: float
    median: float
    min: float
    max: float
    stdev: float

    def to_dict(self) -> dict:
        return {
            "n": self.n, "mean": self.mean, "median": self.median,
            "min": self.min, "max": self.max, "stdev": self.stdev,
        }


def summarize(samples: Sequence[float]) -> SampleSummary:
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return SampleSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return SampleSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        min=float(arr.min()),
        max=float(arr.max()),
        stdev=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )


# ----------------------------------------------------------------------
# bootstrap confidence intervals
# ----------------------------------------------------------------------
def bootstrap_median_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the median of one sample set."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return (0.0, 0.0)
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    medians = np.median(arr[idx], axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(medians, [alpha, 1.0 - alpha])
    return (float(lo), float(hi))


def bootstrap_ratio_ci(
    baseline: Sequence[float],
    candidate: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap CI for ``median(candidate) / median(baseline)``.

    Resamples both sides independently.  Degenerate inputs (empty, or a
    zero baseline median in a resample) fall back to a point interval
    at the observed ratio.
    """
    base = np.asarray(list(baseline), dtype=np.float64)
    cand = np.asarray(list(candidate), dtype=np.float64)
    point = ratio_of_medians(base, cand)
    if base.size < 2 or cand.size < 2:
        return (point, point)
    rng = np.random.default_rng(seed)
    bi = rng.integers(0, base.size, size=(n_boot, base.size))
    ci = rng.integers(0, cand.size, size=(n_boot, cand.size))
    base_med = np.median(base[bi], axis=1)
    cand_med = np.median(cand[ci], axis=1)
    ok = base_med > 0
    if not ok.any():
        return (point, point)
    ratios = cand_med[ok] / base_med[ok]
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(ratios, [alpha, 1.0 - alpha])
    return (float(lo), float(hi))


def ratio_of_medians(
    baseline: Sequence[float], candidate: Sequence[float]
) -> float:
    """``median(candidate)/median(baseline)``; 1.0 when undefined."""
    base = np.asarray(list(baseline), dtype=np.float64)
    cand = np.asarray(list(candidate), dtype=np.float64)
    if base.size == 0 or cand.size == 0:
        return 1.0
    bm = float(np.median(base))
    if bm <= 0:
        return 1.0
    return float(np.median(cand)) / bm


# ----------------------------------------------------------------------
# Mann–Whitney U
# ----------------------------------------------------------------------
def _midranks(pooled: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties assigned their midrank."""
    order = np.argsort(pooled, kind="stable")
    ranks = np.empty(pooled.size, dtype=np.float64)
    sorted_vals = pooled[order]
    i = 0
    while i < pooled.size:
        j = i
        while j + 1 < pooled.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        midrank = 0.5 * (i + j) + 1.0
        ranks[order[i : j + 1]] = midrank
        i = j + 1
    return ranks


def mann_whitney(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """Two-sided Mann–Whitney U test; returns ``(U_a, p_value)``.

    ``U_a`` counts (with ½ for ties) pairs where an ``a`` sample beats
    a ``b`` sample.  The null distribution is the exact permutation of
    rank assignments when ``len(a)+len(b) <= EXACT_LIMIT``; otherwise
    the tie-corrected normal approximation with continuity correction.
    Degenerate inputs (either side empty, or all pooled values equal)
    report ``p = 1.0``.
    """
    xa = np.asarray(list(a), dtype=np.float64)
    xb = np.asarray(list(b), dtype=np.float64)
    n1, n2 = xa.size, xb.size
    if n1 == 0 or n2 == 0:
        return (0.0, 1.0)
    pooled = np.concatenate([xa, xb])
    if np.all(pooled == pooled[0]):
        return (n1 * n2 / 2.0, 1.0)
    ranks = _midranks(pooled)
    rank_sum_a = float(ranks[:n1].sum())
    u_a = rank_sum_a - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0

    if n1 + n2 <= EXACT_LIMIT:
        # exact permutation null of the rank-sum under the observed ties
        observed = abs(u_a - mean_u)
        total = 0
        extreme = 0
        indices = range(n1 + n2)
        for combo in combinations(indices, n1):
            rs = float(ranks[list(combo)].sum())
            u = rs - n1 * (n1 + 1) / 2.0
            total += 1
            if abs(u - mean_u) >= observed - 1e-12:
                extreme += 1
        return (u_a, extreme / total)

    # normal approximation with tie correction
    n = n1 + n2
    _, counts = np.unique(pooled, return_counts=True)
    tie_term = float(((counts**3) - counts).sum())
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0:
        return (u_a, 1.0)
    z = (abs(u_a - mean_u) - 0.5) / math.sqrt(var_u)
    p = math.erfc(max(0.0, z) / math.sqrt(2.0))
    return (u_a, min(1.0, p))


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta effect size in ``[-1, 1]`` (positive: a > b)."""
    xa = np.asarray(list(a), dtype=np.float64)
    xb = np.asarray(list(b), dtype=np.float64)
    if xa.size == 0 or xb.size == 0:
        return 0.0
    diff = xa[:, None] - xb[None, :]
    return float((np.sign(diff)).mean())


@dataclass(frozen=True)
class Comparison:
    """Full statistical comparison of candidate samples vs baseline."""

    ratio: float                   # median(candidate) / median(baseline)
    ratio_ci: Tuple[float, float]  # bootstrap CI of the ratio
    p_value: float                 # Mann–Whitney two-sided
    delta: float                   # Cliff's delta (candidate vs baseline)
    baseline: SampleSummary
    candidate: SampleSummary

    def to_dict(self) -> dict:
        return {
            "ratio": self.ratio,
            "ratio_ci": list(self.ratio_ci),
            "p_value": self.p_value,
            "cliffs_delta": self.delta,
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
        }


def compare_samples(
    baseline: Sequence[float],
    candidate: Sequence[float],
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> Comparison:
    """The comparison bundle every verdict is derived from."""
    u, p = mann_whitney(candidate, baseline)
    del u
    return Comparison(
        ratio=ratio_of_medians(baseline, candidate),
        ratio_ci=bootstrap_ratio_ci(
            baseline, candidate, confidence=confidence,
            n_boot=n_boot, seed=seed,
        ),
        p_value=p,
        delta=cliffs_delta(candidate, baseline),
        baseline=summarize(baseline),
        candidate=summarize(candidate),
    )
