"""Append-only bench trajectory: the repo's performance history.

``BENCH_trajectory.json`` at the repository root accumulates one
condensed entry per recorded bench run — label, git SHA, scale and the
median headline numbers per workload — so the question *"when did
vertex-move get slower?"* has an answer that survives branch history.
Entries are only ever appended; refreshing the committed baseline adds
a new entry rather than rewriting old ones.

:func:`trend_markdown` renders the trajectory as a per-workload trend
table (the Markdown dashboard ``gsap perf trend`` prints).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .record import BenchRecordError, assert_valid

PathLike = Union[str, os.PathLike]

TRAJECTORY_SCHEMA = "gsap-bench-trajectory/1"

#: default trajectory location, relative to the current directory
DEFAULT_TRAJECTORY = "BENCH_trajectory.json"


def _condense(record: dict) -> dict:
    """One trajectory entry from a full bench record."""
    workloads: Dict[str, dict] = {}
    for wl in record.get("workloads", []):
        samples = wl.get("samples") or {}
        entry: dict = {}
        for metric in ("runtime_s", "sim_time_s"):
            values = samples.get(metric)
            if values:
                entry[metric] = float(np.median(values))
        quality = wl.get("quality") or {}
        for metric in ("nmi", "mdl"):
            values = quality.get(metric)
            if values:
                entry[metric] = float(np.median(values))
        phases = wl.get("phases") or {}
        update = phases.get("blockmodel_update_s")
        if update:
            entry["blockmodel_update_s"] = float(np.median(update))
        workloads[wl["key"]] = entry
    environment = record.get("environment") or {}
    return {
        "label": record.get("label", ""),
        "created": record.get("created", ""),
        "git_sha": environment.get("git_sha"),
        "scale": record.get("scale", ""),
        "seed": record.get("seed", 0),
        "repeats": record.get("repeats", 0),
        "workloads": workloads,
    }


def load_trajectory(path: PathLike) -> dict:
    """Load a trajectory file; an absent file is an empty trajectory."""
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise BenchRecordError(f"cannot read trajectory {path}: {err}")
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != TRAJECTORY_SCHEMA
        or not isinstance(payload.get("entries"), list)
    ):
        raise BenchRecordError(
            f"{path} is not a {TRAJECTORY_SCHEMA} trajectory"
        )
    return payload


def append_trajectory(
    path: PathLike, record: dict, *, notes: str = ""
) -> dict:
    """Validate *record*, append its condensed entry, rewrite *path*.

    Returns the updated trajectory payload.  Existing entries are never
    modified — the store is append-only by construction.
    """
    assert_valid(record, source="trajectory append")
    trajectory = load_trajectory(path)
    entry = _condense(record)
    if notes:
        entry["notes"] = notes
    trajectory["entries"].append(entry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )
    return trajectory


def trend_markdown(
    trajectory: dict, *, metric: str = "runtime_s",
    max_entries: Optional[int] = None,
) -> str:
    """Per-workload trend table across trajectory entries.

    Columns are entries (oldest first, optionally truncated to the most
    recent ``max_entries``); rows are workload keys; cells hold the
    entry's median of *metric* with a delta vs the previous entry that
    carried the same workload.
    """
    entries = trajectory.get("entries", [])
    if max_entries is not None:
        entries = entries[-max_entries:]
    if not entries:
        return "# Bench trajectory\n\n(no entries yet)\n"
    keys: List[str] = []
    for entry in entries:
        for key in entry.get("workloads", {}):
            if key not in keys:
                keys.append(key)

    def column_title(entry: dict) -> str:
        sha = entry.get("git_sha") or "?"
        label = entry.get("label") or "run"
        return f"{label}@{sha[:8]}"

    lines = [
        f"# Bench trajectory — {metric}",
        "",
        f"{len(trajectory.get('entries', []))} entr(y/ies) recorded; "
        f"showing {len(entries)}.",
        "",
        "| workload | " + " | ".join(column_title(e) for e in entries) + " |",
        "|---|" + "---:|" * len(entries),
    ]
    for key in keys:
        cells = []
        previous: Optional[float] = None
        for entry in entries:
            value = (entry.get("workloads", {}).get(key) or {}).get(metric)
            if value is None:
                cells.append("—")
                continue
            cell = f"{value:.4g}"
            if previous is not None and previous > 0:
                delta = (value / previous - 1.0) * 100.0
                cell += f" ({delta:+.1f}%)"
            previous = value
            cells.append(cell)
        lines.append(f"| {key} | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"
