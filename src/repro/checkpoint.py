"""Saving and loading partitioning results.

A :class:`~repro.core.result.PartitionResult` serialises to a directory:
``result.json`` (scalars, history, timings) plus ``partition.npy`` (the
block-id array).  Round-tripping is exact; files are plain JSON/NPY so
downstream tooling in any language can consume them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from .core.result import PartitionResult
from .core.state import PhaseTimings, ProposalStats
from .errors import ReproError
from .types import INDEX_DTYPE

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1


def save_result(result: PartitionResult, directory: PathLike) -> Path:
    """Write *result* under *directory* (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "num_blocks": result.num_blocks,
        "mdl": result.mdl,
        "history": [[int(b), float(s)] for b, s in result.history],
        "timings": {
            "block_merge_s": result.timings.block_merge_s,
            "vertex_move_s": result.timings.vertex_move_s,
            "golden_section_s": result.timings.golden_section_s,
        },
        "proposal_stats": {
            "merge_proposals": result.proposal_stats.merge_proposals,
            "merge_proposal_time_s": result.proposal_stats.merge_proposal_time_s,
            "move_proposals": result.proposal_stats.move_proposals,
            "move_proposal_time_s": result.proposal_stats.move_proposal_time_s,
        },
        "total_time_s": result.total_time_s,
        "sim_time_s": result.sim_time_s,
        "num_sweeps": result.num_sweeps,
        "converged": result.converged,
    }
    (directory / "result.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )
    np.save(directory / "partition.npy", result.partition)
    return directory


def load_result(directory: PathLike) -> PartitionResult:
    """Load a result previously written by :func:`save_result`."""
    directory = Path(directory)
    json_path = directory / "result.json"
    npy_path = directory / "partition.npy"
    if not json_path.exists() or not npy_path.exists():
        raise ReproError(f"no saved result under {directory}")
    payload = json.loads(json_path.read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    partition = np.load(npy_path).astype(INDEX_DTYPE)
    timings = PhaseTimings(**payload["timings"])
    stats = ProposalStats(**payload["proposal_stats"])
    return PartitionResult(
        partition=partition,
        num_blocks=int(payload["num_blocks"]),
        mdl=float(payload["mdl"]),
        history=[(int(b), float(s)) for b, s in payload["history"]],
        timings=timings,
        proposal_stats=stats,
        total_time_s=float(payload["total_time_s"]),
        sim_time_s=float(payload["sim_time_s"]),
        num_sweeps=int(payload["num_sweeps"]),
        converged=bool(payload["converged"]),
        algorithm=str(payload["algorithm"]),
    )
