"""Saving and loading partitioning state: results and mid-run snapshots.

Two checkpoint kinds live here:

* **Result checkpoints** (:func:`save_result` / :func:`load_result`) —
  a finished :class:`~repro.core.result.PartitionResult` serialised to a
  directory as ``result.json`` (scalars, history, timings) plus
  ``partition.npy`` (the block-id array).  Round-tripping is exact.

* **Run checkpoints** (:func:`save_run_checkpoint` /
  :func:`load_run_checkpoint`) — the full mid-run state of a
  :class:`~repro.core.partitioner.GSAPPartitioner` at a golden-section
  plateau boundary: the three bracket snapshots, search history, RNG
  stream counters, accumulated timings, and degradation state.  A run
  killed between plateaus resumes from its latest checkpoint and — with
  the same seed — reaches the identical final partition.

Every write is crash-safe: files land under temporary names and are
atomically :func:`os.replace`'d into place, with the JSON manifest
committed last, so a reader never observes a torn checkpoint.  Loads
validate ``format_version`` and raise
:class:`~repro.errors.CheckpointError` on mismatch or truncation.

Binary payloads (``partition.npy``, ``state-*.npz``) additionally carry
a SHA-256 content digest in their manifest; loads verify it and raise
:class:`~repro.errors.CheckpointCorruptError` naming the damaged file
instead of deserializing garbage (bit rot, torn copies, tampering).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .core.result import PartitionResult
from .core.state import PartitionSnapshot, PhaseTimings, ProposalStats
from .errors import CheckpointCorruptError, CheckpointError
from .integrity.manager import IntegrityStats
from .resilience.retry import ResilienceStats
from .types import INDEX_DTYPE

PathLike = Union[str, os.PathLike]

#: result.json format: 2 adds the "resilience" block, 3 adds content
#: digests and the "integrity" block (1 and 2 are still readable).
_FORMAT_VERSION = 3
_COMPAT_VERSIONS = (1, 2, 3)

#: run.json (mid-run snapshot) format.
RUN_FORMAT_VERSION = 1
_RUN_MANIFEST = "run.json"


# ----------------------------------------------------------------------
# atomic-write helpers
# ----------------------------------------------------------------------
def _atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* via a temp file + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _atomic_save_array(path: Path, array: np.ndarray) -> None:
    """``np.save`` to *path* via a temp file + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.save(handle, array)
    os.replace(tmp, path)


def _read_json(path: Path, what: str) -> dict:
    if not path.exists():
        raise CheckpointError(f"no {what} under {path.parent}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{what} {path} is truncated or corrupt: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{what} {path} does not hold a JSON object")
    return payload


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _verify_digests(directory: Path, payload: dict, what: str) -> None:
    """Check every manifest-recorded content digest under *directory*.

    Old manifests (no ``content_digests`` key) pass silently — the
    digest is an integrity upgrade, not a compatibility break.
    """
    digests = payload.get("content_digests")
    if not isinstance(digests, dict):
        return
    for name, expected in digests.items():
        path = directory / str(name)
        if not path.exists():
            raise CheckpointError(f"{what} under {directory} lost {name}")
        actual = _file_sha256(path)
        if actual != str(expected):
            raise CheckpointCorruptError(
                f"{what} file {path} is corrupt: content digest "
                f"{actual[:16]}… does not match the manifest's "
                f"{str(expected)[:16]}… — refusing to deserialize",
                path=str(path),
            )


def _check_version(payload: dict, allowed, what: str) -> int:
    version = payload.get("format_version")
    if version not in allowed:
        raise CheckpointError(
            f"unsupported {what} format version {version!r} "
            f"(expected one of {tuple(allowed)})"
        )
    return int(version)


# ----------------------------------------------------------------------
# result checkpoints
# ----------------------------------------------------------------------
def save_result(result: PartitionResult, directory: PathLike) -> Path:
    """Write *result* under *directory* (created if missing), crash-safely."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "num_blocks": result.num_blocks,
        "mdl": result.mdl,
        "history": [[int(b), float(s)] for b, s in result.history],
        "timings": {
            "block_merge_s": result.timings.block_merge_s,
            "vertex_move_s": result.timings.vertex_move_s,
            "golden_section_s": result.timings.golden_section_s,
            "blockmodel_update_s": result.timings.blockmodel_update_s,
        },
        "proposal_stats": {
            "merge_proposals": result.proposal_stats.merge_proposals,
            "merge_proposal_time_s": result.proposal_stats.merge_proposal_time_s,
            "move_proposals": result.proposal_stats.move_proposals,
            "move_proposal_time_s": result.proposal_stats.move_proposal_time_s,
        },
        "total_time_s": result.total_time_s,
        "sim_time_s": result.sim_time_s,
        "num_sweeps": result.num_sweeps,
        "converged": result.converged,
        "cancelled": result.cancelled,
        "resilience": result.resilience.to_dict(),
        "integrity": result.integrity.to_dict(),
    }
    # the partition lands first, the manifest last: a crash in between
    # leaves either the old consistent pair or a refreshed partition with
    # the old manifest — never a manifest pointing at missing data
    _atomic_save_array(directory / "partition.npy", result.partition)
    payload["content_digests"] = {
        "partition.npy": _file_sha256(directory / "partition.npy")
    }
    _atomic_write_text(
        directory / "result.json", json.dumps(payload, indent=2)
    )
    return directory


def load_result(directory: PathLike) -> PartitionResult:
    """Load a result previously written by :func:`save_result`."""
    directory = Path(directory)
    json_path = directory / "result.json"
    npy_path = directory / "partition.npy"
    payload = _read_json(json_path, "saved result")
    _check_version(payload, _COMPAT_VERSIONS, "result")
    if not npy_path.exists():
        raise CheckpointError(f"saved result under {directory} lost partition.npy")
    _verify_digests(directory, payload, "saved result")
    try:
        partition = np.load(npy_path).astype(INDEX_DTYPE)
        timings = PhaseTimings(**payload["timings"])
        stats = ProposalStats(**payload["proposal_stats"])
        resilience = ResilienceStats.from_dict(payload.get("resilience", {}))
        integrity = IntegrityStats.from_dict(payload.get("integrity", {}))
        return PartitionResult(
            partition=partition,
            num_blocks=int(payload["num_blocks"]),
            mdl=float(payload["mdl"]),
            history=[(int(b), float(s)) for b, s in payload["history"]],
            timings=timings,
            proposal_stats=stats,
            total_time_s=float(payload["total_time_s"]),
            sim_time_s=float(payload["sim_time_s"]),
            num_sweeps=int(payload["num_sweeps"]),
            converged=bool(payload["converged"]),
            cancelled=payload.get("cancelled"),
            algorithm=str(payload["algorithm"]),
            resilience=resilience,
            integrity=integrity,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"saved result under {directory} is incomplete: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# run checkpoints (mid-run snapshots)
# ----------------------------------------------------------------------
@dataclass
class RunCheckpoint:
    """Everything a :class:`GSAPPartitioner` needs to continue a run.

    Attributes
    ----------
    plateau:
        Golden-section plateaus completed so far; doubles as the next
        RNG stream index for the ``block_merge`` / ``vertex_move``
        per-plateau streams.
    snapshots:
        The three bracket entries of the golden-section search (entries
        may be ``None`` before the bracket is established).
    graph_fingerprint:
        ``{num_vertices, num_edges, total_edge_weight}`` of the graph the
        run was partitioning; resume refuses a different graph.
    degradation:
        ``{"batch_halvings": int, "dense_rebuild": bool}`` — the rung of
        the degradation ladder the run had reached.
    """

    plateau: int
    initial_mdl: float
    num_sweeps: int
    history: List[tuple]
    snapshots: List[Optional[PartitionSnapshot]]
    graph_fingerprint: Dict[str, int]
    config: Dict[str, object] = field(default_factory=dict)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    proposal_stats: ProposalStats = field(default_factory=ProposalStats)
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    degradation: Dict[str, object] = field(
        default_factory=lambda: {"batch_halvings": 0, "dense_rebuild": False}
    )
    sim_time_s: float = 0.0
    algorithm: str = "GSAP"
    #: serialized :meth:`repro.obs.Observability.to_state` payload, so a
    #: resumed run keeps the spans/metrics captured before the kill.
    observability: Dict[str, object] = field(default_factory=dict)
    #: serialized :class:`~repro.integrity.IntegrityStats`, so a resumed
    #: run keeps counting audits/repairs from the pre-kill totals.
    integrity: Dict[str, object] = field(default_factory=dict)

    def best_snapshot(self) -> Optional[PartitionSnapshot]:
        """The bracket snapshot with the lowest MDL (``None`` if empty)."""
        candidates = [s for s in self.snapshots if s is not None]
        if not candidates:
            return None
        return min(candidates, key=lambda snap: snap.mdl)


def graph_fingerprint(graph) -> Dict[str, int]:
    """Identity triple used to match a checkpoint to its graph."""
    return {
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "total_edge_weight": int(graph.total_edge_weight),
    }


def save_run_checkpoint(state: RunCheckpoint, directory: PathLike) -> Path:
    """Atomically persist a mid-run snapshot under *directory*.

    The bracket bmaps land in ``state-<plateau>.npz`` first; the manifest
    ``run.json`` referencing that file is replaced last, so the latest
    *complete* checkpoint always wins.  Superseded state files are
    cleaned up opportunistically.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    state_name = f"state-{state.plateau:06d}.npz"
    arrays = {}
    snapshot_meta: List[Optional[dict]] = []
    for i, snap in enumerate(state.snapshots):
        if snap is None:
            snapshot_meta.append(None)
        else:
            snapshot_meta.append(
                {"num_blocks": int(snap.num_blocks), "mdl": float(snap.mdl)}
            )
            arrays[f"snap{i}"] = np.asarray(snap.bmap, dtype=INDEX_DTYPE)
    tmp = directory / (state_name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
    os.replace(tmp, directory / state_name)

    payload = {
        "content_digests": {
            state_name: _file_sha256(directory / state_name)
        },
        "format_version": RUN_FORMAT_VERSION,
        "kind": "gsap-run",
        "algorithm": state.algorithm,
        "state_file": state_name,
        "plateau": state.plateau,
        "initial_mdl": state.initial_mdl,
        "num_sweeps": state.num_sweeps,
        "history": [[int(b), float(s)] for b, s in state.history],
        "snapshots": snapshot_meta,
        "graph": dict(state.graph_fingerprint),
        "config": dict(state.config),
        "timings": {
            "block_merge_s": state.timings.block_merge_s,
            "vertex_move_s": state.timings.vertex_move_s,
            "golden_section_s": state.timings.golden_section_s,
            "blockmodel_update_s": state.timings.blockmodel_update_s,
        },
        "proposal_stats": {
            "merge_proposals": state.proposal_stats.merge_proposals,
            "merge_proposal_time_s": state.proposal_stats.merge_proposal_time_s,
            "move_proposals": state.proposal_stats.move_proposals,
            "move_proposal_time_s": state.proposal_stats.move_proposal_time_s,
        },
        "resilience": state.resilience.to_dict(),
        "degradation": dict(state.degradation),
        "sim_time_s": state.sim_time_s,
        "observability": dict(state.observability),
        "integrity": dict(state.integrity),
    }
    _atomic_write_text(directory / _RUN_MANIFEST, json.dumps(payload, indent=2))

    for stale in directory.glob("state-*.npz"):
        if stale.name != state_name:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return directory


def load_run_checkpoint(directory: PathLike) -> RunCheckpoint:
    """Load the latest complete run checkpoint under *directory*."""
    directory = Path(directory)
    payload = _read_json(directory / _RUN_MANIFEST, "run checkpoint")
    _check_version(payload, (RUN_FORMAT_VERSION,), "run checkpoint")
    if payload.get("kind") != "gsap-run":
        raise CheckpointError(
            f"{directory / _RUN_MANIFEST} is not a gsap-run checkpoint"
        )
    state_path = directory / str(payload.get("state_file", ""))
    if not state_path.exists():
        raise CheckpointError(
            f"run checkpoint under {directory} lost its state file "
            f"{payload.get('state_file')!r}"
        )
    _verify_digests(directory, payload, "run checkpoint")
    try:
        with np.load(state_path) as bundle:
            snapshots: List[Optional[PartitionSnapshot]] = []
            for i, meta in enumerate(payload["snapshots"]):
                if meta is None:
                    snapshots.append(None)
                    continue
                key = f"snap{i}"
                if key not in bundle:
                    raise CheckpointError(
                        f"state file {state_path} is missing bracket array {key}"
                    )
                snapshots.append(
                    PartitionSnapshot(
                        num_blocks=int(meta["num_blocks"]),
                        mdl=float(meta["mdl"]),
                        bmap=bundle[key].astype(INDEX_DTYPE),
                    )
                )
        return RunCheckpoint(
            plateau=int(payload["plateau"]),
            initial_mdl=float(payload["initial_mdl"]),
            num_sweeps=int(payload["num_sweeps"]),
            history=[(int(b), float(s)) for b, s in payload["history"]],
            snapshots=snapshots,
            graph_fingerprint={
                k: int(v) for k, v in payload["graph"].items()
            },
            config=dict(payload.get("config", {})),
            timings=PhaseTimings(**payload["timings"]),
            proposal_stats=ProposalStats(**payload["proposal_stats"]),
            resilience=ResilienceStats.from_dict(payload.get("resilience", {})),
            degradation=dict(payload.get("degradation", {})),
            sim_time_s=float(payload.get("sim_time_s", 0.0)),
            algorithm=str(payload.get("algorithm", "GSAP")),
            observability=dict(payload.get("observability", {})),
            integrity=dict(payload.get("integrity", {})),
        )
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, OSError) as exc:
        raise CheckpointError(
            f"run checkpoint under {directory} is incomplete: {exc}"
        ) from exc


def has_run_checkpoint(directory: PathLike) -> bool:
    """True when *directory* holds a loadable run checkpoint manifest."""
    return (Path(directory) / _RUN_MANIFEST).exists()
