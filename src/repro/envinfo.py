"""Environment fingerprinting shared by run reports and bench records.

A fingerprint pins down everything that makes two timing measurements
comparable: interpreter and NumPy versions, the platform, the active
benchmark scale and the git commit the code was built from.  Run
reports (:mod:`repro.obs.report`) and bench records
(:mod:`repro.perf.record`) embed the same block, so provenance follows
every number the repo publishes, and ``gsap perf compare`` can warn
when a comparison crosses environments.
"""

from __future__ import annotations

import os
import platform
import subprocess
from typing import Dict, List, Optional

FINGERPRINT_KEYS = (
    "python",
    "implementation",
    "numpy",
    "platform",
    "machine",
    "bench_scale",
    "git_sha",
)

#: keys whose mismatch makes timing comparisons suspect (git_sha is
#: *expected* to differ between a baseline and a candidate).
COMPARABILITY_KEYS = (
    "python",
    "implementation",
    "numpy",
    "platform",
    "machine",
    "bench_scale",
)


def _git_sha() -> Optional[str]:
    """Current git commit, or ``None`` outside a repository.

    ``GSAP_GIT_SHA`` overrides (useful for containers shipping an
    exported tree without ``.git``).
    """
    env_sha = os.environ.get("GSAP_GIT_SHA")
    if env_sha:
        return env_sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint() -> Dict[str, Optional[str]]:
    """The environment block embedded in reports and bench records."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.system(),
        "machine": platform.machine(),
        "bench_scale": os.environ.get("GSAP_BENCH_SCALE", "quick"),
        "git_sha": _git_sha(),
    }


def fingerprint_mismatches(
    a: Optional[dict], b: Optional[dict]
) -> List[str]:
    """Human-readable differences that undermine cross-record comparisons.

    Only :data:`COMPARABILITY_KEYS` are checked — two records *should*
    differ in ``git_sha`` (that is the point of comparing them).  A
    missing fingerprint on either side is itself reported.
    """
    if not a or not b:
        return ["one or both records carry no environment fingerprint"]
    problems = []
    for key in COMPARABILITY_KEYS:
        va, vb = a.get(key), b.get(key)
        if va != vb:
            problems.append(f"{key}: baseline={va!r} candidate={vb!r}")
    return problems
