"""Job model of the partitioning service: specs, outcomes, parking.

A :class:`JobSpec` is one accepted partition request.  Its terminal
state is a :class:`JobOutcome` — *every* accepted job resolves to
exactly one outcome; the server's accounting invariant ("no accepted
job is ever silently lost") is checkable by summing outcome statuses
against accepted submissions.

Jobs that were accepted but never started when the server shut down are
*parked*: their full request (graph arrays + configuration) is
persisted crash-safely under the checkpoint root so a later process can
resubmit them via :func:`load_parked_job`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..config import SBPConfig
from ..core.result import PartitionResult
from ..errors import CheckpointError
from ..graph.builder import build_graph
from ..graph.csr import DiGraphCSR
from ..types import INDEX_DTYPE

PathLike = Union[str, os.PathLike]

#: Terminal statuses an accepted job can reach.  ``rejected`` is the
#: only status a *non*-accepted submission gets.
JOB_STATUSES = (
    "completed",      # result returned (fresh, cached, or coalesced)
    "timed_out",      # deadline fired; best-effort result when one exists
    "cancelled",      # cancelled before enough progress to persist
    "checkpointed",   # shutdown persisted a resumable run checkpoint
    "parked",         # shutdown persisted the un-started request itself
    "failed",         # retries + fault budget exhausted
    "rejected",       # admission control refused the submission
)

_PARKED_MANIFEST = "parked.json"
_PARKED_ARRAYS = "parked.npz"
_PARKED_FORMAT = 1


def graph_work_bytes(graph: DiGraphCSR) -> int:
    """Resident bytes a job pins while queued or running.

    Both CSR sides count — the partitioner gathers from each — making
    this the unit the admission controller's in-flight byte cap is
    measured in.
    """
    total = 0
    for adj in (graph.out_adj, graph.in_adj):
        total += adj.ptr.nbytes + adj.nbr.nbytes + adj.wgt.nbytes
    return total


@dataclass
class JobSpec:
    """One accepted partition request.

    ``trace_id`` is the request's end-to-end identity: minted by the
    outermost client (:meth:`~repro.serve.net.ServeClient.submit`) or,
    for callers that did not bring one, by the server at submission.
    Every span and the terminal wide event carry it verbatim.
    ``tenant`` is a free-form attribution label; ``parent_span_id``
    names the client-side span the server-side tree hangs under.
    """

    job_id: str
    graph: DiGraphCSR
    config: SBPConfig
    cache_key: str
    work_bytes: int
    submitted_at: float
    deadline_s: Optional[float] = None
    tenant: Optional[str] = None
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


@dataclass
class JobOutcome:
    """Terminal state of one submission.

    Attributes
    ----------
    status:
        One of :data:`JOB_STATUSES`.
    result:
        The partition, when one exists.  ``timed_out`` outcomes carry
        the best partition found before the deadline (``None`` when the
        deadline fired before any plateau completed).
    cache_hit / coalesced:
        Whether the result came from the result cache, or from another
        in-flight job for the identical request (single-flight).
    checkpoint_dir:
        Where shutdown persisted this job's state: a resumable run
        checkpoint (``checkpointed``) or a parked request (``parked``).
    retry_after_s:
        For ``rejected``: suggested client backoff before resubmitting.
    degradation_level:
        The server's degradation-ladder level the job executed under
        (0 = full-fidelity).
    trace_id / trace_path:
        The end-to-end trace identity the job ran under, and — when the
        server writes per-job Chrome traces — the file it landed in.
    """

    job_id: str
    status: str
    result: Optional[PartitionResult] = None
    cache_hit: bool = False
    coalesced: bool = False
    checkpoint_dir: Optional[str] = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    retries: int = 0
    retry_after_s: Optional[float] = None
    reject_reason: Optional[str] = None
    degradation_level: int = 0
    error: Optional[str] = None
    trace_id: Optional[str] = None
    trace_path: Optional[str] = None
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in JOB_STATUSES:
            raise ValueError(
                f"unknown job status {self.status!r}; "
                f"expected one of {JOB_STATUSES}"
            )

    @property
    def ok(self) -> bool:
        """True when the caller got a usable partition."""
        return self.result is not None

    def to_dict(self, include_partition: bool = False) -> dict:
        """JSON-ready summary (the wire format of the TCP front end)."""
        payload: dict = {
            "job_id": self.job_id,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "retries": self.retries,
            "degradation_level": self.degradation_level,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.trace_path is not None:
            payload["trace_path"] = self.trace_path
        if self.checkpoint_dir is not None:
            payload["checkpoint_dir"] = self.checkpoint_dir
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        if self.reject_reason is not None:
            payload["reject_reason"] = self.reject_reason
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["num_blocks"] = int(self.result.num_blocks)
            payload["mdl"] = float(self.result.mdl)
            payload["converged"] = bool(self.result.converged)
            if self.result.cancelled is not None:
                payload["cancelled"] = self.result.cancelled
            if include_partition:
                payload["partition"] = [
                    int(b) for b in self.result.partition
                ]
        return payload


# ----------------------------------------------------------------------
# parking: persist an accepted-but-unstarted request across shutdown
# ----------------------------------------------------------------------
def park_job(job: JobSpec, directory: PathLike) -> Path:
    """Persist *job*'s full request under *directory*, crash-safely.

    The graph arrays land first (``parked.npz``), the manifest last
    (``parked.json``) — mirroring the run-checkpoint write protocol, so
    a reader never observes a manifest without its payload.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    adj = job.graph.out_adj
    tmp = directory / (_PARKED_ARRAYS + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(
            handle,
            ptr=np.asarray(adj.ptr, dtype=INDEX_DTYPE),
            nbr=np.asarray(adj.nbr, dtype=INDEX_DTYPE),
            wgt=np.asarray(adj.wgt),
        )
    os.replace(tmp, directory / _PARKED_ARRAYS)
    manifest = {
        "format_version": _PARKED_FORMAT,
        "kind": "gsap-parked-job",
        "job_id": job.job_id,
        "num_vertices": int(job.graph.num_vertices),
        "cache_key": job.cache_key,
        "deadline_s": job.deadline_s,
        "config": job.config.to_dict(),
    }
    tmp = directory / (_PARKED_MANIFEST + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    os.replace(tmp, directory / _PARKED_MANIFEST)
    return directory


def load_parked_job(directory: PathLike):
    """Load a parked request: ``(job_id, graph, config_dict)``.

    The returned config dict is :meth:`SBPConfig.to_dict` output —
    rebuild with ``SBPConfig(**{k: v for k, v in cfg.items()})`` after
    dropping nested blocks you want defaulted, or feed the seed alone.
    """
    directory = Path(directory)
    manifest_path = directory / _PARKED_MANIFEST
    if not manifest_path.exists():
        raise CheckpointError(f"no parked job under {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"parked-job manifest {manifest_path} is corrupt: {exc}"
        ) from exc
    if manifest.get("kind") != "gsap-parked-job":
        raise CheckpointError(f"{manifest_path} is not a parked job")
    if manifest.get("format_version") != _PARKED_FORMAT:
        raise CheckpointError(
            f"unsupported parked-job format "
            f"{manifest.get('format_version')!r}"
        )
    arrays_path = directory / _PARKED_ARRAYS
    if not arrays_path.exists():
        raise CheckpointError(
            f"parked job under {directory} lost {_PARKED_ARRAYS}"
        )
    with np.load(arrays_path) as bundle:
        ptr = bundle["ptr"]
        nbr = bundle["nbr"]
        wgt = bundle["wgt"]
    num_vertices = int(manifest["num_vertices"])
    src = np.repeat(
        np.arange(num_vertices, dtype=INDEX_DTYPE), np.diff(ptr)
    )
    graph = build_graph(src, nbr, wgt, num_vertices=num_vertices)
    return str(manifest["job_id"]), graph, dict(manifest["config"])
