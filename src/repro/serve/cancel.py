"""Cooperative cancellation: deadline tokens threaded through a run.

A :class:`CancelToken` is handed to
:meth:`repro.core.partitioner.GSAPPartitioner.partition` and polled at
the partitioner's cooperative check sites (the top of every
golden-section plateau and every MCMC sweep).  When the token is
cancelled — explicitly, or because its deadline passed — the next check
raises :class:`~repro.errors.RunCancelled`; the partitioner unwinds
cleanly, releases its device context, persists a resumable checkpoint
when the run made enough progress (``checkpoint_dir`` +
``checkpoint_min_plateaus``), and returns the best partition found so
far with :attr:`~repro.core.result.PartitionResult.cancelled` set.

Tokens are safe to cancel from another thread (the job server cancels
worker-thread runs from its event loop): state is a pair of write-once
attributes guarded by a lock, and ``check`` takes the fast path — two
attribute reads — when nothing fired.

The clock is injectable so deadline tests run on a fake clock with zero
real sleeping.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional, Union

from ..errors import RunCancelled

PathLike = Union[str, os.PathLike]

#: Cancellation reasons with defined semantics across the library.
REASON_DEADLINE = "deadline"
REASON_SHUTDOWN = "shutdown"
REASON_CANCELLED = "cancelled"


class CancelToken:
    """A cancellation flag with an optional deadline.

    Parameters
    ----------
    deadline_s:
        Relative deadline in seconds from token creation; ``None``
        disables the deadline (the token only fires when
        :meth:`cancel` is called).
    clock:
        Monotonic clock used for the deadline; injectable for tests.
    checkpoint_dir:
        Where the partitioner should persist a resumable run checkpoint
        if this token fires mid-run (``None`` skips persistence unless
        the run has its own checkpoint directory).
    checkpoint_min_plateaus:
        Progress threshold: a cancelled run only writes the token's
        checkpoint once at least this many plateaus completed (a run
        cancelled before any real progress has nothing worth saving).
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        checkpoint_dir: Optional[PathLike] = None,
        checkpoint_min_plateaus: int = 1,
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        if checkpoint_min_plateaus < 0:
            raise ValueError(
                f"checkpoint_min_plateaus must be >= 0, "
                f"got {checkpoint_min_plateaus}"
            )
        self._clock = clock
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason: Optional[str] = None
        self._deadline: Optional[float] = (
            clock() + deadline_s if deadline_s is not None else None
        )
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_min_plateaus = checkpoint_min_plateaus

    # ------------------------------------------------------------------
    def cancel(self, reason: str = REASON_CANCELLED) -> None:
        """Fire the token; the first reason wins, later calls are no-ops."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called or the deadline passed."""
        if self._cancelled:
            return True
        if self._deadline is not None and self._clock() >= self._deadline:
            self.cancel(REASON_DEADLINE)
            return True
        return False

    @property
    def reason(self) -> Optional[str]:
        """Why the token fired (``None`` while still live)."""
        self.cancelled  # promote an expired deadline into a reason
        return self._reason

    def remaining_s(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one, floor 0)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def check(self, where: str = "") -> None:
        """Raise :class:`RunCancelled` when the token has fired.

        Called at cooperative check sites; *where* names the site for
        diagnostics (``"plateau"``, ``"sweep"``).
        """
        if self.cancelled:
            reason = self._reason or REASON_CANCELLED
            raise RunCancelled(
                f"run cancelled ({reason})"
                + (f" at {where} boundary" if where else ""),
                reason=reason,
                where=where,
            )
