"""Graceful degradation: shed optional work before shedding jobs.

Under sustained overload the server climbs a *degradation ladder* —
each rung trades result fidelity or optional safety work for throughput,
and only the final rung starts refusing jobs.  When pressure subsides
the ladder unwinds automatically.

Rungs (cumulative — each includes everything above it):

======  =============  ====================================================
level   name           effect on newly started jobs
======  =============  ====================================================
0       ``normal``     full-fidelity configuration, untouched
1       ``no_audit``   integrity auditing disabled (costs detection
                       latency, never correctness — the auditor is a
                       check, not a transform)
2       ``coarse``     golden-section refinement coarsened: convergence
                       thresholds widened ×:data:`COARSE_THRESHOLD_FACTOR`,
                       so plateaus converge in fewer sweeps
3       ``capped``     MCMC sweeps per plateau capped at
                       :data:`CAPPED_MAX_SWEEPS`
4       ``shed``       admission capacity scaled by
                       :data:`SHED_ADMISSION_FACTOR` — a slice of incoming
                       jobs is rejected with backpressure
======  =============  ====================================================

Every rung yields partitions that still satisfy the blockmodel
invariant auditor: degraded runs are *less refined*, never corrupt.

The :class:`OverloadDetector` drives transitions from a sliding window
of queue-pressure samples with high/low watermarks and a cooldown, so a
single burst doesn't flap the ladder.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from ..config import SBPConfig

LEVEL_NAMES = ("normal", "no_audit", "coarse", "capped", "shed")
MAX_LEVEL = len(LEVEL_NAMES) - 1

#: convergence thresholds are widened by this factor at ``coarse``
COARSE_THRESHOLD_FACTOR = 8.0
#: hard sweep cap per vertex-move phase at ``capped``
CAPPED_MAX_SWEEPS = 8
#: fraction of normal admission capacity kept at ``shed``
SHED_ADMISSION_FACTOR = 0.25
#: thresholds live in (0, 1); keep a margin under the open bound
_THRESHOLD_CEILING = 0.5


class DegradationLadder:
    """Map a degradation level onto a job's :class:`SBPConfig`.

    Stateless apart from the current level; thread-safe.  ``force``
    pins the ladder at a level (for tests and operator overrides) until
    ``force(None)`` releases it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._level = 0
        self._forced: Optional[int] = None
        self.transitions_total = 0

    @property
    def level(self) -> int:
        with self._lock:
            return self._forced if self._forced is not None else self._level

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    def set_level(self, level: int) -> bool:
        """Move to *level* (clamped); returns True when it changed."""
        level = max(0, min(MAX_LEVEL, int(level)))
        with self._lock:
            if level == self._level:
                return False
            self._level = level
            self.transitions_total += 1
            return True

    def force(self, level: Optional[int]) -> None:
        """Pin the ladder at *level*; ``None`` releases the pin."""
        with self._lock:
            self._forced = (
                None if level is None else max(0, min(MAX_LEVEL, int(level)))
            )

    def admission_shed_factor(self) -> float:
        """Queue-capacity scale for the current level."""
        return SHED_ADMISSION_FACTOR if self.level >= 4 else 1.0

    def apply_config(self, config: SBPConfig) -> Tuple[SBPConfig, int]:
        """Return *(degraded config, level applied)* for a new job.

        The level is sampled once per job at start; a running job keeps
        the fidelity it started with.
        """
        level = self.level
        if level == 0:
            return config, 0
        changes: dict = {}
        if level >= 1 and config.integrity.audit:
            changes["integrity"] = config.integrity.replace(audit=False)
        if level >= 2:
            changes["delta_entropy_threshold1"] = min(
                _THRESHOLD_CEILING,
                config.delta_entropy_threshold1 * COARSE_THRESHOLD_FACTOR,
            )
            changes["delta_entropy_threshold2"] = min(
                _THRESHOLD_CEILING,
                config.delta_entropy_threshold2 * COARSE_THRESHOLD_FACTOR,
            )
        if level >= 3:
            changes["max_num_nodal_itr"] = min(
                config.max_num_nodal_itr, CAPPED_MAX_SWEEPS
            )
        if not changes:
            return config, level
        return config.replace(**changes), level


class OverloadDetector:
    """Sliding-window overload detector with hysteresis and cooldown.

    Feed it queue-pressure samples in ``[0, 1]`` (e.g. ``depth /
    max_queue_depth``) via :meth:`observe`; it returns the level the
    ladder should sit at.

    * window mean > ``high_watermark`` → climb one rung
    * window mean < ``low_watermark``  → descend one rung
    * otherwise hold

    Transitions are rate-limited by ``cooldown_s`` so one noisy sample
    can't flap the ladder.  *clock* is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        window: int = 8,
        high_watermark: float = 0.85,
        low_watermark: float = 0.35,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        if not (0.0 <= low_watermark < high_watermark <= 1.0):
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= 1, got "
                f"low={low_watermark!r} high={high_watermark!r}"
            )
        self.window = window
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._samples: List[float] = []
        self._level = 0
        self._last_transition: Optional[float] = None

    @property
    def level(self) -> int:
        return self._level

    def pressure(self) -> float:
        """Current window mean (0.0 when no samples yet)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def observe(self, sample: float) -> int:
        """Record one pressure sample; return the recommended level."""
        sample = max(0.0, min(1.0, float(sample)))
        self._samples.append(sample)
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]
        if len(self._samples) < self.window:
            return self._level
        now = self._clock()
        if (
            self._last_transition is not None
            and now - self._last_transition < self.cooldown_s
        ):
            return self._level
        mean = self.pressure()
        if mean > self.high_watermark and self._level < MAX_LEVEL:
            self._level += 1
            self._last_transition = now
        elif mean < self.low_watermark and self._level > 0:
            self._level -= 1
            self._last_transition = now
        return self._level
