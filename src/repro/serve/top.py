"""``gsap top``: a refreshing terminal dashboard over the ``status`` verb.

Polls a running ``gsap serve`` instance's TCP ``status`` operation and
renders the flight-deck snapshot — pressure, outcomes, cache
effectiveness, per-size-class SLO/error-budget/burn-rate state, flight
recorder, and the most recent jobs — as plain text.  No curses
dependency: a full-screen ANSI clear between frames is enough for a
polling dashboard and keeps the renderer trivially testable
(:func:`render_status` is a pure function of the status payload).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

from .net import ServeClient

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_duration(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 120:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_status(payload: dict, width: int = 78) -> str:
    """Render one ``status`` payload as a text dashboard frame."""
    stats = payload.get("stats", {})
    admission = stats.get("admission", {})
    cache = stats.get("cache", {})
    outcomes = stats.get("outcomes", {})
    slo = payload.get("slo", {})
    flight = payload.get("flight_recorder", {})
    recent = payload.get("recent_jobs", [])

    lines = []
    rule = "=" * width
    lines.append(rule)
    lines.append(
        f" gsap serve · up {_fmt_duration(payload.get('uptime_s', 0.0))}"
        f" · degradation {stats.get('degradation_level', 0)}"
        f" ({stats.get('degradation_name', 'normal')})"
        + ("  [SHUTTING DOWN]" if stats.get("shutting_down") else "")
    )
    lines.append(rule)
    depth = admission.get("depth", 0)
    lines.append(
        f" queue depth {depth:>4}"
        f" · inflight {admission.get('inflight_bytes', 0):,} B"
        f" · shed x{admission.get('shed_factor', 1.0):g}"
        f" · running {len(stats.get('running', []))}"
    )
    total_jobs = sum(outcomes.values()) if outcomes else 0
    outcome_bits = " ".join(
        f"{status}={count}" for status, count in sorted(outcomes.items())
    )
    lines.append(f" outcomes ({total_jobs}): {outcome_bits or '—'}")
    hits = cache.get("hits_total", 0)
    misses = cache.get("misses_total", 0)
    ratio = hits / (hits + misses) if (hits + misses) else 0.0
    lines.append(
        f" cache {cache.get('size', 0)}/{cache.get('capacity', 0)}"
        f" · hit ratio {ratio:.0%}"
        f" · coalesced {stats.get('singleflight_coalesced_total', 0)}"
    )
    lines.append("")
    lines.append(
        f" {'class':<8} {'budget remaining':<38} "
        f"{'burn 5m':>8} {'burn 1h':>8} alerts"
    )
    for cls, entry in sorted(slo.items()):
        budget = entry.get("error_budget_remaining", 1.0)
        burns = entry.get("burn_rates", {})
        alerts = ",".join(entry.get("alerts", [])) or "-"
        lines.append(
            f" {cls:<8} [{_bar(budget)}] {budget:>6.1%}"
            f" ({entry.get('window_bad', 0)}/{entry.get('window_total', 0)} bad)"
            f" {burns.get('5m', 0.0):>8.2f} {burns.get('1h', 0.0):>8.2f}"
            f" {alerts}"
        )
    if not slo:
        lines.append("   (no SLO objectives configured)")
    lines.append("")
    lines.append(
        f" flight recorder: {flight.get('buffered', 0)}"
        f"/{flight.get('capacity', 0)} buffered"
        f" · {flight.get('dumps_total', 0)} dumps"
        + (
            f" · last: {flight.get('last_dump_reason')}"
            if flight.get("last_dump_reason") else ""
        )
    )
    if recent:
        lines.append("")
        lines.append(
            f" {'job':<12} {'status':<12} {'class':<7} {'lat(s)':>8}"
            f" {'rung':>4}  trace"
        )
        for event in recent[-8:][::-1]:
            latency = (
                event.get("queue_wait_s", 0.0) + event.get("service_s", 0.0)
            )
            lines.append(
                f" {event.get('job_id', '?'):<12}"
                f" {event.get('status', '?'):<12}"
                f" {event.get('size_class', '?'):<7}"
                f" {latency:>8.3f}"
                f" {event.get('degradation', {}).get('level', 0):>4}"
                f"  {str(event.get('trace_id', ''))[:16]}"
            )
    lines.append(rule)
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    *,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    out: TextIO = sys.stdout,
    sleep: Callable[[float], None] = time.sleep,
    clear: bool = True,
) -> int:
    """Poll ``status`` and redraw until interrupted (or *iterations*).

    Returns a process exit code: 0 on a clean stop, 1 when the first
    connection attempt fails (the server is not up).
    """
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                with ServeClient(host, port) as client:
                    reply = client.status()
            except (ConnectionError, OSError) as exc:
                if frames == 0:
                    out.write(f"gsap top: cannot reach {host}:{port}: {exc}\n")
                    return 1
                out.write(f"gsap top: connection lost: {exc}\n")
                return 0
            if not reply.get("ok"):
                out.write(f"gsap top: server error: {reply.get('error')}\n")
                return 1
            frame = render_status(reply["status"])
            if clear and (iterations is None or iterations > 1):
                out.write(_CLEAR)
            out.write(frame + "\n")
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
