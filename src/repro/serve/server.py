"""Overload-safe asyncio job server for partitioning-as-a-service.

:class:`PartitionServer` accepts concurrent partition requests and stays
correct and bounded under overload:

* **Admission control** — a bounded queue plus an in-flight work-byte
  cap; saturated submissions are rejected with an explicit
  ``retry_after_s`` hint (:class:`~repro.serve.admission.AdmissionController`).
* **Deadlines** — each job carries a
  :class:`~repro.serve.cancel.CancelToken` created *at submission*, so
  queue wait counts against the deadline.  A fired deadline returns the
  best partition found so far (``timed_out`` outcome); past the
  progress threshold the run also persists a resumable checkpoint.
* **Retries** — jobs dying to transient device faults are re-run via
  :func:`~repro.resilience.retry.with_retries` under a per-job fault
  budget, after the partitioner's own plateau-level resilience gives up.
* **Graceful degradation** — a sliding-window overload detector drives
  the :class:`~repro.serve.degradation.DegradationLadder`: optional
  work (auditing, fine refinement, long MCMC) is shed before jobs are.
* **Result cache + single-flight** — repeat requests are served from an
  LRU keyed by content digests; concurrent identical requests coalesce
  onto one computation.
* **Graceful shutdown** — ``drain`` finishes everything accepted;
  ``checkpoint`` cancels running jobs into resumable checkpoints and
  parks un-started ones on disk.  Either way, every accepted job
  resolves to an explicit outcome — none are silently lost.

The partitioning itself runs on a thread pool (it is CPU-bound numpy
work); the event loop only coordinates.  Each job gets its own
simulated device and its own tracer (the shared hub's metrics registry
is attached to per-job hubs, so counters aggregate while span stacks
stay single-threaded).

Operational observability (the "flight deck"):

* **End-to-end tracing** — every job runs under a per-job
  :class:`~repro.obs.trace.Tracer` whose spans (queue wait, admission
  verdict, attempts, partitioner phases, kernels) all carry the
  client-minted ``trace_id``; with ``trace_dir`` set the server writes
  one Chrome trace per terminal job.
* **Wide events** — one structured canonical log line per terminal job
  covering every decision made on its behalf (admission, degradation
  rung, cache/single-flight role, retries, deadline, phase timings,
  result quality), emitted through the logger and kept in the flight
  recorder.
* **SLO engine** — terminal jobs feed a
  :class:`~repro.obs.slo.SLOEngine`; error-budget and burn-rate gauges
  land on the shared registry per size class.
* **Flight recorder** — a bounded ring of recent spans/wide
  events/transitions, dumped atomically on degradation escalation
  (deferred to the next terminal job so the dump carries its wide
  event), on a worker crash, and on demand (:meth:`dump_flight`).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..config import SBPConfig
from ..core.partitioner import GSAPPartitioner
from ..core.result import PartitionResult
from ..errors import (
    AdmissionRejected,
    DeviceError,
    ReproError,
    RetryExhaustedError,
    RunCancelled,
)
from ..gpusim import A4000, Device
from ..graph.csr import DiGraphCSR
from ..integrity import config_sha256, graph_sha256
from ..logging_util import get_logger
from ..obs import Observability
from ..obs.export import prometheus_text, write_chrome_trace
from ..obs.flight import FlightRecorder
from ..obs.slo import BURN_WINDOWS, SLOEngine, SLOObjective, size_class_of
from ..obs.trace import TraceContext, Tracer
from ..resilience.faults import install_fault_injector
from ..resilience.retry import FaultBudget, RetryPolicy, with_retries
from .admission import AdmissionController
from .cache import ResultCache, SingleFlight, cache_key
from .cancel import REASON_SHUTDOWN, CancelToken
from .degradation import LEVEL_NAMES, DegradationLadder, OverloadDetector
from .job import JobOutcome, JobSpec, graph_work_bytes, park_job

#: Schema tag of the per-job canonical log line / flight-recorder event.
WIDE_EVENT_SCHEMA = "gsap-serve-wide-event/1"

logger = get_logger("serve")

_SENTINEL = object()


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`PartitionServer`.

    Parameters
    ----------
    workers:
        Partitioning threads.  ``0`` accepts jobs without ever starting
        them — useful for deterministic admission/shutdown tests
        (shutdown then parks or cancels the backlog; ``drain`` mode is
        coerced to ``checkpoint`` since nothing could drain it).
    max_queue_depth / max_inflight_bytes:
        Admission limits (see :class:`AdmissionController`).
    cache_capacity:
        LRU entries in the result cache; ``0`` disables caching and
        single-flight dedup.
    checkpoint_root:
        Directory jobs checkpoint/park under (per-job subdirectories).
        ``None`` disables both deadline checkpoints and parking.
    default_deadline_s:
        Deadline applied to submissions that don't carry their own.
    retry_attempts / retry_base_delay_s / fault_budget:
        Job-level retry loop: total attempts, backoff base, and the
        per-job cap on absorbed faults (``None`` = uncapped).
    checkpoint_min_plateaus:
        Progress threshold below which a cancelled run is not worth a
        checkpoint.
    overload_*:
        Sliding-window overload detector parameters
        (see :class:`~repro.serve.degradation.OverloadDetector`).
    trace_dir:
        Directory per-job Chrome traces are written to (one
        ``<job_id>.trace.json`` per terminal job); ``None`` disables
        per-job trace files (spans still feed the flight recorder).
    flight_dir:
        Directory flight-recorder dumps land in (crash, escalation, or
        the ``dump`` verb without an explicit path).  ``None`` keeps
        the recorder in-memory only unless a dump names a path.
    flight_recorder_capacity:
        Ring-buffer size of the flight recorder.
    slo_objectives:
        Per-size-class :class:`~repro.obs.slo.SLOObjective` overrides;
        ``None`` uses :data:`~repro.obs.slo.DEFAULT_OBJECTIVES`.
    """

    workers: int = 2
    max_queue_depth: int = 16
    max_inflight_bytes: Optional[int] = None
    cache_capacity: int = 32
    checkpoint_root: Optional[str] = None
    default_deadline_s: Optional[float] = None
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.01
    fault_budget: Optional[int] = None
    checkpoint_min_plateaus: int = 1
    overload_window: int = 8
    overload_high: float = 0.85
    overload_low: float = 0.35
    overload_cooldown_s: float = 1.0
    trace_dir: Optional[str] = None
    flight_dir: Optional[str] = None
    flight_recorder_capacity: int = 2048
    slo_objectives: Optional[Tuple[SLOObjective, ...]] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers!r}")
        if self.retry_attempts < 1:
            raise ValueError(
                f"retry_attempts must be >= 1, got {self.retry_attempts!r}"
            )
        if self.flight_recorder_capacity < 1:
            raise ValueError(
                f"flight_recorder_capacity must be >= 1, got "
                f"{self.flight_recorder_capacity!r}"
            )


class _Queued:
    """One accepted job travelling through the server."""

    __slots__ = ("job", "token", "future", "level", "tracer",
                 "queue_span", "sf_role")

    def __init__(self, job: JobSpec, token: CancelToken,
                 future: "asyncio.Future[JobOutcome]",
                 tracer: Tracer, sf_role: Optional[str] = None) -> None:
        self.job = job
        self.token = token
        self.future = future
        self.level = 0
        self.tracer = tracer
        self.queue_span = -1
        self.sf_role = sf_role


class PartitionServer:
    """In-process partitioning service; see the module docstring.

    Use as an async context manager, or call :meth:`start` /
    :meth:`shutdown` explicitly.  All public coroutine methods must run
    on the same event loop.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        observability: Optional[Observability] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
        fault_plan_factory: Optional[Callable[[JobSpec, int], object]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.obs = observability or Observability(enabled=True)
        self._clock = clock
        self._sleep = sleep if sleep is not None else time.sleep
        self._fault_plan_factory = fault_plan_factory
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            max_inflight_bytes=self.config.max_inflight_bytes,
        )
        self.cache = ResultCache(self.config.cache_capacity)
        self.singleflight = SingleFlight()
        self.ladder = DegradationLadder()
        self.detector = OverloadDetector(
            window=self.config.overload_window,
            high_watermark=self.config.overload_high,
            low_watermark=self.config.overload_low,
            cooldown_s=self.config.overload_cooldown_s,
            clock=clock,
        )
        self.slo = SLOEngine(
            objectives=self.config.slo_objectives, clock=clock
        )
        self.flight = FlightRecorder(
            capacity=self.config.flight_recorder_capacity, clock=clock
        )
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._workers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._running: Dict[str, _Queued] = {}
        self._accepted: List["asyncio.Future[JobOutcome]"] = []
        self._job_ids = itertools.count()
        self._dump_ids = itertools.count(1)
        self._started = False
        self._started_at = clock()
        self._shutting_down = False
        self._shutdown_mode: Optional[str] = None
        self._pending_flight_dump: Optional[str] = None
        self.outcomes_by_status: Dict[str, int] = {}

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "PartitionServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.config.workers > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="gsap-serve",
            )
            for idx in range(self.config.workers):
                self._workers.append(
                    asyncio.ensure_future(self._worker_loop(idx))
                )
        logger.info(
            "server started: workers=%d queue<=%d cache=%d",
            self.config.workers,
            self.config.max_queue_depth,
            self.config.cache_capacity,
        )

    # ------------------------------------------------------------------
    # submission (the in-process client API)
    # ------------------------------------------------------------------
    async def submit(
        self,
        graph: DiGraphCSR,
        config: Optional[SBPConfig] = None,
        *,
        deadline_s: Optional[float] = None,
        use_cache: bool = True,
        job_id: Optional[str] = None,
        tenant: Optional[str] = None,
        trace_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
    ) -> JobOutcome:
        """Submit one partition request and await its terminal outcome.

        Never raises for service-level conditions — rejection, timeout,
        fault exhaustion and shutdown all come back as the outcome's
        ``status``.  Only programming errors (bad arguments) raise.

        *trace_id*/*parent_span_id* propagate the client's trace
        context (a fresh trace is minted when absent); *tenant* labels
        the job's spans and wide event for per-tenant attribution.
        """
        if not self._started:
            await self.start()
        config = config or SBPConfig()
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        job_id = job_id or f"job-{next(self._job_ids):06d}"
        if trace_id is None:
            trace_id = TraceContext.mint().trace_id
        work_bytes = graph_work_bytes(graph)
        key = cache_key(graph_sha256(graph), config_sha256(config))
        job = JobSpec(
            job_id=job_id,
            graph=graph,
            config=config,
            cache_key=key,
            work_bytes=work_bytes,
            submitted_at=self._clock(),
            deadline_s=deadline_s,
            tenant=tenant,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
        )
        tracer = Tracer(enabled=self.obs.enabled, clock=self._clock)
        root_args = {"job_id": job_id, "trace_id": trace_id}
        if tenant is not None:
            root_args["tenant"] = tenant
        if parent_span_id is not None:
            root_args["parent_span_id"] = parent_span_id
        tracer.begin("job", "serve", **root_args)

        # -- admission gate --------------------------------------------
        try:
            self.admission.try_admit(work_bytes, self._shutting_down)
        except AdmissionRejected as exc:
            self.obs.count(
                "serve_jobs_rejected_total",
                help="submissions refused by admission control",
            )
            self.obs.instant(
                "rejected", "serve", job=job_id, reason=exc.reason,
                retry_after_s=exc.retry_after_s,
            )
            tracer.instant(
                "admission", "serve", verdict="rejected",
                reason=exc.reason, retry_after_s=exc.retry_after_s,
            )
            outcome = JobOutcome(
                job_id=job_id,
                status="rejected",
                reject_reason=exc.reason,
                retry_after_s=exc.retry_after_s,
                error=str(exc),
            )
            self._complete_job(job, outcome, tracer)
            return outcome
        self.obs.count(
            "serve_jobs_accepted_total", help="submissions admitted"
        )
        tracer.instant("admission", "serve", verdict="accepted")
        self._observe_pressure()

        caching = use_cache and self.config.cache_capacity > 0
        claimed = False
        sf_role: Optional[str] = None
        try:
            # -- result cache ------------------------------------------
            if caching:
                cached = self.cache.get(key)
                if cached is not None:
                    self.obs.count(
                        "serve_cache_hits_total",
                        help="submissions served from the result cache",
                    )
                    tracer.instant("cache_hit", "serve")
                    outcome = JobOutcome(
                        job_id=job_id, status="completed",
                        result=cached, cache_hit=True,
                    )
                    self._complete_job(job, outcome, tracer)
                    self._finish(outcome, work_bytes)
                    return outcome
                self.obs.count(
                    "serve_cache_misses_total",
                    help="submissions that missed the result cache",
                )

                # -- single-flight dedup -------------------------------
                claimed, flight = self.singleflight.claim(key)
                sf_role = "leader" if claimed else None
                if not claimed:
                    self.obs.count(
                        "serve_singleflight_coalesced_total",
                        help="submissions coalesced onto an in-flight twin",
                    )
                    wait_idx = tracer.begin("singleflight_wait", "serve")
                    shared = await flight
                    tracer.end(wait_idx)
                    if shared is not None:
                        outcome = JobOutcome(
                            job_id=job_id, status="completed",
                            result=shared, coalesced=True,
                        )
                        self._complete_job(
                            job, outcome, tracer, sf_role="follower"
                        )
                        self._finish(outcome, work_bytes)
                        return outcome
                    # leader yielded nothing shareable (degraded, timed
                    # out, failed); run this job individually.
                    claimed, _ = self.singleflight.claim(key)
                    sf_role = "recomputed" if claimed else None

            token = CancelToken(
                deadline_s,
                clock=self._clock,
                checkpoint_dir=self._job_dir(job_id),
                checkpoint_min_plateaus=self.config.checkpoint_min_plateaus,
            )
            future: "asyncio.Future[JobOutcome]" = (
                asyncio.get_running_loop().create_future()
            )
            queued = _Queued(job, token, future, tracer, sf_role=sf_role)
            queued.queue_span = tracer.begin("queue_wait", "serve")
            self._accepted.append(future)
            if self._shutdown_mode == "checkpoint":
                # shutdown raced us past the admission gate; never
                # enqueue behind the worker sentinels — park directly.
                self._park_or_cancel(queued)
            else:
                self._queue.put_nowait(queued)
        except BaseException:
            # failed before the job was handed over to a worker: undo
            # the reservation (and the single-flight claim) ourselves.
            if claimed:
                self.singleflight.forget(key)
            self.admission.release(work_bytes)
            raise
        # From here on a worker (or the shutdown path) owns the job and
        # resolves the future on every path, including our cancellation.
        return await asyncio.shield(future)

    def submit_task(self, graph, config=None, **kwargs) -> "asyncio.Task":
        """Fire-and-await-later variant of :meth:`submit`."""
        return asyncio.ensure_future(self.submit(graph, config, **kwargs))

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    async def _worker_loop(self, idx: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                break
            queued: _Queued = item
            job = queued.job
            if queued.future.done():
                continue
            if self._shutdown_mode == "checkpoint":
                self._park_or_cancel(queued)
                continue
            queued.tracer.end(queued.queue_span)
            wait_s = max(0.0, self._clock() - job.submitted_at)
            self.obs.observe(
                "serve_queue_wait_seconds", wait_s,
                help="time from admission to execution start",
            )
            # degraded fidelity is sampled once, at job start
            eff_config, level = self.ladder.apply_config(job.config)
            queued.level = level
            self._running[job.job_id] = queued
            started = self._clock()
            crashed = False
            try:
                if queued.token.cancelled:
                    raise RunCancelled(
                        f"job {job.job_id} expired before start",
                        reason=queued.token.reason or "cancelled",
                        where="queue",
                    )
                result, retries = await loop.run_in_executor(
                    self._executor,
                    self._execute_job, job, eff_config, queued.token,
                    queued.tracer,
                )
                outcome = self._classify_result(
                    job, result, retries, wait_s, started, level
                )
            except RunCancelled as exc:
                outcome = self._classify_cancel(
                    job, exc, wait_s, started, level
                )
            except (RetryExhaustedError, ReproError) as exc:
                self.singleflight.forget(job.cache_key)
                self.obs.count(
                    "serve_jobs_failed_total",
                    help="jobs that exhausted retries or hit hard errors",
                )
                logger.warning("job %s failed: %s", job.job_id, exc)
                outcome = JobOutcome(
                    job_id=job.job_id, status="failed",
                    queue_wait_s=wait_s,
                    service_s=self._clock() - started,
                    degradation_level=level,
                    error=f"{type(exc).__name__}: {exc}",
                )
            except Exception as exc:  # crash guard: worker must survive
                crashed = True
                self.singleflight.forget(job.cache_key)
                self.obs.count(
                    "serve_jobs_failed_total",
                    help="jobs that exhausted retries or hit hard errors",
                )
                logger.exception(
                    "worker %d crashed executing job %s", idx, job.job_id
                )
                outcome = JobOutcome(
                    job_id=job.job_id, status="failed",
                    queue_wait_s=wait_s,
                    service_s=self._clock() - started,
                    degradation_level=level,
                    error=f"crash: {type(exc).__name__}: {exc}",
                )
            finally:
                self._running.pop(job.job_id, None)
            self._resolve(queued, outcome)
            if crashed:
                # the wide event is already in the ring (via _resolve),
                # so the dump carries the crashing job's full record.
                self._pending_flight_dump = None
                self.dump_flight("worker_crash")

    def _execute_job(self, job: JobSpec, config: SBPConfig,
                     token: CancelToken, tracer: Tracer):
        """Thread-pool body: run the partitioner with job-level retries."""
        device = Device(A4000)
        job_obs = Observability(enabled=self.obs.config.enabled)
        job_obs.metrics = self.obs.metrics  # aggregate counters, own tracer
        job_obs.tracer = tracer  # the job's end-to-end trace
        attempts = {"last": 0}

        def operation(attempt: int) -> PartitionResult:
            attempts["last"] = attempt
            if self._fault_plan_factory is not None:
                plan = self._fault_plan_factory(job, attempt)
                if plan is not None:
                    install_fault_injector(device, plan)
                else:
                    device.fault_injector = None
            partitioner = GSAPPartitioner(
                config, device=device, observability=job_obs
            )
            with tracer.span("attempt", "serve", attempt=attempt):
                return partitioner.partition(job.graph, cancel=token)

        policy = RetryPolicy(
            max_attempts=self.config.retry_attempts,
            base_delay_s=self.config.retry_base_delay_s,
            retry_on=(DeviceError, RetryExhaustedError),
        )
        budget = (
            FaultBudget(self.config.fault_budget)
            if self.config.fault_budget is not None else None
        )
        result = with_retries(
            operation, policy,
            seed=config.seed,
            label=f"serve:{job.job_id}",
            budget=budget,
            sleep=self._sleep,
            logger=logger,
            obs=job_obs,
        )
        return result, attempts["last"]

    # -- outcome classification ----------------------------------------
    def _classify_result(self, job, result, retries, wait_s, started,
                         level) -> JobOutcome:
        service_s = self._clock() - started
        self.obs.observe(
            "serve_service_seconds", service_s,
            help="execution time per job (retries included)",
        )
        if retries:
            self.obs.count(
                "serve_job_retries_total", amount=retries,
                help="job-level partition re-runs after transient faults",
            )
        if result.cancelled is None:
            status = "completed"
            self.obs.count(
                "serve_jobs_completed_total", help="jobs finished normally"
            )
            # only pristine full-fidelity results are shareable
            if level == 0 and self.config.cache_capacity > 0:
                self.cache.put(job.cache_key, result)
                self.singleflight.resolve(job.cache_key, result)
            else:
                self.singleflight.forget(job.cache_key)
        elif result.cancelled == "deadline":
            status = "timed_out"
            self.obs.count(
                "serve_jobs_timed_out_total",
                help="jobs stopped by their deadline",
            )
            self.singleflight.forget(job.cache_key)
        else:
            # shutdown / explicit cancel with a best-effort result; a
            # written checkpoint upgrades the status.
            status = (
                "checkpointed"
                if self._has_checkpoint(job.job_id) else "cancelled"
            )
            self.obs.count(
                "serve_jobs_checkpointed_total"
                if status == "checkpointed" else "serve_jobs_cancelled_total",
                help="jobs persisted at shutdown"
                if status == "checkpointed" else "jobs cancelled mid-run",
            )
            self.singleflight.forget(job.cache_key)
        return JobOutcome(
            job_id=job.job_id, status=status, result=result,
            queue_wait_s=wait_s, service_s=service_s, retries=retries,
            degradation_level=level,
            checkpoint_dir=(
                str(self._job_dir(job.job_id))
                if status in ("checkpointed", "timed_out")
                and self._has_checkpoint(job.job_id) else None
            ),
        )

    def _classify_cancel(self, job, exc: RunCancelled, wait_s, started,
                         level) -> JobOutcome:
        """Cancellation before any plateau finished (no best partition)."""
        self.singleflight.forget(job.cache_key)
        service_s = self._clock() - started
        if exc.reason == "deadline":
            status = "timed_out"
            self.obs.count(
                "serve_jobs_timed_out_total",
                help="jobs stopped by their deadline",
            )
        elif self._has_checkpoint(job.job_id):
            status = "checkpointed"
            self.obs.count(
                "serve_jobs_checkpointed_total",
                help="jobs persisted at shutdown",
            )
        else:
            status = "cancelled"
            self.obs.count(
                "serve_jobs_cancelled_total", help="jobs cancelled mid-run"
            )
        return JobOutcome(
            job_id=job.job_id, status=status,
            queue_wait_s=wait_s, service_s=service_s,
            degradation_level=level,
            checkpoint_dir=(
                str(self._job_dir(job.job_id))
                if status == "checkpointed" else None
            ),
            error=str(exc),
        )

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    async def shutdown(self, mode: str = "drain") -> dict:
        """Stop the server; every accepted job resolves before return.

        ``drain`` finishes all accepted jobs at full fidelity.
        ``checkpoint`` stops fast but safe: running jobs are cancelled
        (persisting resumable checkpoints past the progress threshold)
        and never-started jobs are parked on disk.

        Returns a summary dict (outcome counts, leftovers) and is
        idempotent.
        """
        if mode not in ("drain", "checkpoint"):
            raise ValueError(f"unknown shutdown mode {mode!r}")
        if self.config.workers == 0 and mode == "drain":
            # nothing could ever drain a worker-less server
            mode = "checkpoint"
        self._shutting_down = True
        self._shutdown_mode = mode
        if mode == "checkpoint":
            for queued in list(self._running.values()):
                queued.token.cancel(REASON_SHUTDOWN)
            # drain never-started jobs directly off the queue
            while True:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is not _SENTINEL and not item.future.done():
                    self._park_or_cancel(item)
        # wait for every accepted job to reach a terminal outcome; late
        # arrivals (e.g. coalesced followers re-queued mid-shutdown)
        # extend self._accepted, so loop until quiescent.
        while True:
            pending = [f for f in self._accepted if not f.done()]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        for _ in self._workers:
            self._queue.put_nowait(_SENTINEL)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
            self._workers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pending_flight_dump is not None:
            # escalation armed a dump but no job terminated after it;
            # don't lose the evidence across shutdown.
            reason = self._pending_flight_dump
            self._pending_flight_dump = None
            self.dump_flight(reason)
        logger.info("server shut down (%s): %s", mode,
                    self.outcomes_by_status)
        return {
            "mode": mode,
            "outcomes": dict(self.outcomes_by_status),
            "unresolved": sum(1 for f in self._accepted if not f.done()),
        }

    def _park_or_cancel(self, queued: _Queued) -> None:
        """Resolve a never-started job at shutdown without losing it."""
        job = queued.job
        if self.config.checkpoint_root is not None:
            directory = park_job(job, self._job_dir(job.job_id))
            self.obs.count(
                "serve_jobs_parked_total",
                help="accepted jobs persisted un-started at shutdown",
            )
            outcome = JobOutcome(
                job_id=job.job_id, status="parked",
                checkpoint_dir=str(directory),
            )
        else:
            self.obs.count(
                "serve_jobs_cancelled_total", help="jobs cancelled mid-run"
            )
            outcome = JobOutcome(
                job_id=job.job_id, status="cancelled",
                error="server shut down before the job started",
            )
        self.singleflight.forget(job.cache_key)
        self._resolve(queued, outcome)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _resolve(self, queued: _Queued, outcome: JobOutcome) -> None:
        self._complete_job(
            queued.job, outcome, queued.tracer, sf_role=queued.sf_role
        )
        self._finish(outcome, queued.job.work_bytes)
        if not queued.future.done():
            queued.future.set_result(outcome)
        self._observe_pressure()

    def _finish(self, outcome: JobOutcome, work_bytes: int) -> None:
        """Common bookkeeping for every terminal outcome of an accepted job."""
        self.outcomes_by_status[outcome.status] = (
            self.outcomes_by_status.get(outcome.status, 0) + 1
        )
        self.admission.release(
            work_bytes,
            outcome.service_s if outcome.service_s > 0 else None,
        )
        self.obs.gauge_set(
            "serve_queue_depth", float(self.admission.depth),
            help="accepted jobs queued or running",
        )
        self.obs.gauge_set(
            "serve_inflight_bytes", float(self.admission.inflight_bytes),
            help="graph work-bytes pinned by accepted jobs",
        )

    def _job_dir(self, job_id: str) -> Optional[Path]:
        if self.config.checkpoint_root is None:
            return None
        return Path(self.config.checkpoint_root) / job_id

    def _has_checkpoint(self, job_id: str) -> bool:
        directory = self._job_dir(job_id)
        return directory is not None and (directory / "run.json").exists()

    def _observe_pressure(self) -> None:
        """Feed the overload detector; move the ladder when it says so."""
        sample = self.admission.depth / max(1, self.config.max_queue_depth)
        prior = self.ladder.level
        level = self.detector.observe(sample)
        if self.ladder.set_level(level):
            self._on_degradation_transition(prior)
        self.admission.set_shed_factor(self.ladder.admission_shed_factor())
        self.obs.gauge_set(
            "serve_degradation_level", float(self.ladder.level),
            help="current degradation-ladder level (0 = full fidelity)",
        )

    def _on_degradation_transition(self, prior: int) -> None:
        """Account a ladder move; escalations arm a flight-recorder dump.

        The dump itself is deferred to the next terminal job
        (:meth:`_complete_job`), so it always carries the wide event of
        the job in flight when the ladder escalated.
        """
        self.obs.count(
            "serve_degradation_transitions_total",
            help="degradation-ladder level changes",
        )
        self.obs.instant(
            "degradation", "serve",
            level=self.ladder.level, level_name=self.ladder.level_name,
            pressure=round(self.detector.pressure(), 4),
        )
        self.flight.append("degradation_transition", {
            "from_level": prior,
            "to_level": self.ladder.level,
            "name": self.ladder.level_name,
            "pressure": round(self.detector.pressure(), 4),
        })
        logger.warning(
            "degradation level -> %d (%s), pressure %.2f",
            self.ladder.level, self.ladder.level_name,
            self.detector.pressure(),
        )
        if self.ladder.level > prior:
            self._pending_flight_dump = "degradation_escalation"

    def force_degradation(self, level: Optional[int]) -> None:
        """Pin the degradation ladder (tests/operators); ``None`` releases."""
        prior = self.ladder.level
        self.ladder.force(level)
        if self.ladder.level != prior:
            self._on_degradation_transition(prior)
        self.admission.set_shed_factor(self.ladder.admission_shed_factor())

    # ------------------------------------------------------------------
    # flight deck: wide events, SLO accounting, recorder dumps
    # ------------------------------------------------------------------
    def _complete_job(
        self,
        job: JobSpec,
        outcome: JobOutcome,
        tracer: Tracer,
        sf_role: Optional[str] = None,
    ) -> None:
        """Terminal-job bookkeeping shared by every outcome path.

        Closes the job's span tree, stamps the trace identity on every
        span, emits the wide event (flight recorder + canonical log
        line), feeds the SLO engine, writes the per-job Chrome trace,
        and performs any armed flight-recorder dump.
        """
        outcome.trace_id = job.trace_id
        tracer.close_open_spans()
        if tracer.enabled:
            for span in tracer.spans():
                span.args.setdefault("trace_id", job.trace_id)
                span.args.setdefault("job_id", job.job_id)
                if job.tenant is not None:
                    span.args.setdefault("tenant", job.tenant)
        wide = self._wide_event(job, outcome, tracer, sf_role)
        if tracer.enabled:
            for span in tracer.spans():
                # keep the ring signal-dense: serve decisions and the
                # partitioner's coarse structure, not per-kernel leaves
                if span.category in ("serve", "run", "plateau", "phase"):
                    self.flight.append_span(span.to_dict())
        self.flight.append_wide_event(wide)
        self._record_slo(wide)
        logger.info(
            "wide_event %s", json.dumps(wide, sort_keys=True, default=str)
        )
        if self.config.trace_dir is not None and tracer.enabled:
            path = Path(self.config.trace_dir) / f"{job.job_id}.trace.json"
            write_chrome_trace(tracer, path, metadata={
                "trace_id": job.trace_id,
                "job_id": job.job_id,
                "tenant": job.tenant,
            })
            outcome.trace_path = str(path)
        if self._pending_flight_dump is not None:
            reason = self._pending_flight_dump
            self._pending_flight_dump = None
            self.dump_flight(reason)

    def _wide_event(
        self,
        job: JobSpec,
        outcome: JobOutcome,
        tracer: Tracer,
        sf_role: Optional[str],
    ) -> dict:
        """The job's canonical log line: every decision, one record."""
        phase_s: Dict[str, float] = {}
        for span in tracer.spans():
            if span.category == "phase" and span.duration_s:
                phase_s[span.name] = (
                    phase_s.get(span.name, 0.0) + span.duration_s
                )
        result = None
        if outcome.result is not None:
            result = {
                "num_blocks": int(outcome.result.num_blocks),
                "mdl": float(outcome.result.mdl),
                "converged": bool(outcome.result.converged),
                "cancelled": outcome.result.cancelled,
            }
        return {
            "schema": WIDE_EVENT_SCHEMA,
            "job_id": job.job_id,
            "trace_id": job.trace_id,
            "tenant": job.tenant,
            "status": outcome.status,
            "size_class": size_class_of(job.num_vertices),
            "num_vertices": int(job.num_vertices),
            "work_bytes": int(job.work_bytes),
            "admission": {
                "verdict": (
                    "rejected" if outcome.status == "rejected"
                    else "accepted"
                ),
                "reason": outcome.reject_reason,
                "retry_after_s": outcome.retry_after_s,
            },
            "degradation": {
                "level": outcome.degradation_level,
                "name": LEVEL_NAMES[outcome.degradation_level],
            },
            "cache": {
                "hit": outcome.cache_hit,
                "coalesced": outcome.coalesced,
                "singleflight_role": sf_role,
            },
            "retries": outcome.retries,
            "deadline": {
                "deadline_s": job.deadline_s,
                "timed_out": outcome.status == "timed_out",
            },
            "queue_wait_s": outcome.queue_wait_s,
            "service_s": outcome.service_s,
            "phase_s": phase_s,
            "checkpoint_dir": outcome.checkpoint_dir,
            "result": result,
            "error": outcome.error,
        }

    def _record_slo(self, wide: dict) -> None:
        """Feed the SLO engine and republish its gauges per size class.

        ``parked``/``checkpointed`` outcomes are operator-induced (a
        deliberate shutdown), not service failures, and are excluded.
        """
        status = wide["status"]
        if status in ("parked", "checkpointed"):
            return
        cls = wide["size_class"]
        latency = wide["queue_wait_s"] + wide["service_s"]
        good = self.slo.record(cls, latency, ok=status == "completed")
        if good is None:
            return
        self.obs.count(
            f"serve_slo_{'good' if good else 'bad'}_total_{cls}",
            help=f"SLO-{'good' if good else 'bad'} terminal jobs "
                 f"(size class {cls})",
        )
        self.obs.gauge_set(
            f"serve_slo_error_budget_remaining_{cls}",
            self.slo.error_budget_remaining(cls),
            help=f"error budget left in the SLO window (size class {cls})",
        )
        for window_name, window_s in BURN_WINDOWS.items():
            self.obs.gauge_set(
                f"serve_slo_burn_rate_{window_name}_{cls}",
                self.slo.burn_rate(cls, window_s),
                help=f"error-budget burn rate over {window_name} "
                     f"(size class {cls})",
            )

    def dump_flight(self, reason: str,
                    path: Optional[Path] = None) -> Optional[Path]:
        """Dump the flight recorder; returns the file (``None`` when no
        destination is configured and none was given)."""
        if path is None:
            if self.config.flight_dir is None:
                logger.warning(
                    "flight-recorder dump (%s) skipped: no flight_dir",
                    reason,
                )
                return None
            path = (
                Path(self.config.flight_dir)
                / f"flight-{next(self._dump_ids):03d}-{reason}.jsonl"
            )
        dumped = self.flight.dump(path, reason)
        self.obs.count(
            "serve_flight_dumps_total",
            help="flight-recorder dumps written",
        )
        logger.warning("flight recorder dumped (%s) -> %s", reason, dumped)
        return dumped

    def status(self) -> dict:
        """Live ops snapshot: stats + SLO + flight recorder + recents.

        This is what the TCP ``status`` verb and ``gsap top`` render.
        """
        return {
            "uptime_s": self._clock() - self._started_at,
            "stats": self.stats(),
            "slo": self.slo.snapshot(),
            "flight_recorder": self.flight.stats(),
            "recent_jobs": [
                entry["event"]
                for entry in self.flight.recent(8, kind="wide_event")
            ],
        }

    def metrics_text(self) -> str:
        """Live Prometheus text exposition of the shared registry."""
        return prometheus_text(
            self.obs.metrics, labels={"service": "gsap-serve"}
        )

    def stats(self) -> dict:
        """Operational snapshot (also served by the TCP front end)."""
        return {
            "admission": self.admission.stats(),
            "cache": self.cache.stats(),
            "singleflight_inflight": len(self.singleflight),
            "singleflight_coalesced_total": self.singleflight.coalesced_total,
            "degradation_level": self.ladder.level,
            "degradation_name": self.ladder.level_name,
            "outcomes": dict(self.outcomes_by_status),
            "running": sorted(self._running),
            "shutting_down": self._shutting_down,
        }
