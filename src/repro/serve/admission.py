"""Admission control: bounded queues, byte caps, explicit backpressure.

The server never lets work pile up unboundedly.  Every submission
passes through :class:`AdmissionController`, which tracks two resources:

* **queue depth** — accepted jobs not yet finished; and
* **in-flight work bytes** — the sum of :func:`~repro.serve.job.graph_work_bytes`
  over those jobs, a proxy for pinned device memory.

When either resource is saturated the submission is *rejected with
explicit backpressure*: the caller receives a ``retry_after_s`` hint
derived from an exponentially-weighted moving average of recent service
times, so well-behaved clients naturally spread their retries instead
of hammering a saturated server.

The degradation ladder's last rung plugs in through ``shed_factor``:
setting it below 1.0 shrinks the effective queue capacity, shedding a
fraction of incoming load while the server recovers.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..errors import AdmissionRejected

#: retry hint when no service-time samples exist yet
_DEFAULT_RETRY_AFTER_S = 1.0
#: floor so rejected clients never busy-spin
_MIN_RETRY_AFTER_S = 0.05


class AdmissionController:
    """Decide, under a lock, whether a submission may enter the system.

    Parameters
    ----------
    max_queue_depth:
        Maximum accepted-but-unfinished jobs (queued + running).
    max_inflight_bytes:
        Cap on summed graph work-bytes across accepted jobs; ``None``
        disables the byte gate.
    ewma_alpha:
        Smoothing factor of the service-time average feeding the
        ``retry_after_s`` hint.

    Thread-safe: admission happens on the event loop, release on worker
    threads.
    """

    def __init__(
        self,
        max_queue_depth: int = 16,
        max_inflight_bytes: Optional[int] = None,
        ewma_alpha: float = 0.3,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth!r}"
            )
        if max_inflight_bytes is not None and max_inflight_bytes < 1:
            raise ValueError(
                f"max_inflight_bytes must be >= 1, got {max_inflight_bytes!r}"
            )
        if not (0.0 < ewma_alpha <= 1.0):
            raise ValueError(f"ewma_alpha must lie in (0, 1], got {ewma_alpha!r}")
        self.max_queue_depth = max_queue_depth
        self.max_inflight_bytes = max_inflight_bytes
        self._ewma_alpha = ewma_alpha
        self._lock = threading.Lock()
        self._depth = 0
        self._inflight_bytes = 0
        self._service_ewma_s: Optional[float] = None
        self._shed_factor = 1.0
        # counters (read under lock via stats())
        self.accepted_total = 0
        self.rejected_total = 0
        self.rejected_by_reason: dict = {}

    # -- load shedding -------------------------------------------------
    def set_shed_factor(self, factor: float) -> None:
        """Scale effective queue capacity to ``factor`` (0 < f <= 1)."""
        if not (0.0 < factor <= 1.0):
            raise ValueError(f"shed factor must lie in (0, 1], got {factor!r}")
        with self._lock:
            self._shed_factor = factor

    @property
    def shed_factor(self) -> float:
        with self._lock:
            return self._shed_factor

    # -- admission -----------------------------------------------------
    def try_admit(self, work_bytes: int, shutting_down: bool = False) -> None:
        """Admit a job of *work_bytes*, or raise :class:`AdmissionRejected`.

        On success the job's resources are reserved immediately; the
        caller must pair every successful admit with exactly one
        :meth:`release`.
        """
        with self._lock:
            if shutting_down:
                self._reject("shutting_down")
            effective_depth = max(
                1, int(self.max_queue_depth * self._shed_factor)
            )
            shedding = self._shed_factor < 1.0
            if self._depth >= effective_depth:
                self._reject("shed_load" if shedding else "queue_depth")
            if (
                self.max_inflight_bytes is not None
                and self._depth > 0
                and self._inflight_bytes + work_bytes > self.max_inflight_bytes
            ):
                # an oversized job admitted into an empty system still
                # runs (no starvation of big graphs); otherwise the
                # byte cap holds.
                self._reject("inflight_bytes")
            self._depth += 1
            self._inflight_bytes += work_bytes
            self.accepted_total += 1

    def release(self, work_bytes: int, service_s: Optional[float] = None) -> None:
        """Return a finished/failed job's reservation to the pool."""
        with self._lock:
            self._depth = max(0, self._depth - 1)
            self._inflight_bytes = max(0, self._inflight_bytes - work_bytes)
            if service_s is not None and service_s >= 0.0:
                if self._service_ewma_s is None:
                    self._service_ewma_s = service_s
                else:
                    a = self._ewma_alpha
                    self._service_ewma_s = (
                        a * service_s + (1.0 - a) * self._service_ewma_s
                    )

    def _reject(self, reason: str) -> None:
        """Raise AdmissionRejected with a retry hint.  Lock held."""
        self.rejected_total += 1
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1
        )
        retry_after = self._retry_after_locked()
        raise AdmissionRejected(
            f"admission refused ({reason}): depth={self._depth}/"
            f"{self.max_queue_depth} inflight_bytes={self._inflight_bytes}"
            f" shed_factor={self._shed_factor:g}",
            reason=reason,
            retry_after_s=retry_after,
        )

    def _retry_after_locked(self) -> float:
        if self._service_ewma_s is None:
            return _DEFAULT_RETRY_AFTER_S
        # expected time until a slot frees: one mean service time,
        # scaled by how far over capacity we are.
        over = max(1.0, self._depth / max(1, self.max_queue_depth))
        return max(_MIN_RETRY_AFTER_S, self._service_ewma_s * over)

    # -- introspection -------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def inflight_bytes(self) -> int:
        with self._lock:
            return self._inflight_bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": self._depth,
                "inflight_bytes": self._inflight_bytes,
                "max_queue_depth": self.max_queue_depth,
                "max_inflight_bytes": self.max_inflight_bytes,
                "shed_factor": self._shed_factor,
                "service_ewma_s": self._service_ewma_s,
                "accepted_total": self.accepted_total,
                "rejected_total": self.rejected_total,
                "rejected_by_reason": dict(self.rejected_by_reason),
            }
