"""Partitioning-as-a-service: an overload-safe async job layer.

Public surface:

* :class:`PartitionServer` / :class:`ServeConfig` — the in-process
  service (``async with PartitionServer(...) as srv: await
  srv.submit(graph)``).
* :class:`CancelToken` — cooperative cancellation/deadline handle,
  honoured by :meth:`~repro.core.partitioner.GSAPPartitioner.partition`.
* :class:`ServeFrontend` / :class:`ServeClient` — the ``gsap serve``
  TCP JSONL front end and its blocking client.
* :class:`JobOutcome` — terminal state of every accepted submission.
* :func:`render_status` / :func:`run_top` — the ``gsap top`` terminal
  dashboard over the ``status`` verb.

See ``docs/serving.md`` for the architecture: admission control,
deadlines, graceful degradation, result caching, shutdown semantics,
and the flight deck (tracing, SLOs, live ops verbs, flight recorder).
"""

from .admission import AdmissionController
from .cache import ResultCache, SingleFlight, cache_key
from .cancel import (
    REASON_CANCELLED,
    REASON_DEADLINE,
    REASON_SHUTDOWN,
    CancelToken,
)
from .degradation import (
    LEVEL_NAMES,
    MAX_LEVEL,
    DegradationLadder,
    OverloadDetector,
)
from .job import (
    JOB_STATUSES,
    JobOutcome,
    JobSpec,
    graph_work_bytes,
    load_parked_job,
    park_job,
)
from .net import ServeClient, ServeFrontend
from .server import WIDE_EVENT_SCHEMA, PartitionServer, ServeConfig
from .top import render_status, run_top

__all__ = [
    "AdmissionController",
    "ResultCache",
    "SingleFlight",
    "cache_key",
    "REASON_CANCELLED",
    "REASON_DEADLINE",
    "REASON_SHUTDOWN",
    "CancelToken",
    "LEVEL_NAMES",
    "MAX_LEVEL",
    "DegradationLadder",
    "OverloadDetector",
    "JOB_STATUSES",
    "JobOutcome",
    "JobSpec",
    "graph_work_bytes",
    "load_parked_job",
    "park_job",
    "ServeClient",
    "ServeFrontend",
    "PartitionServer",
    "ServeConfig",
    "WIDE_EVENT_SCHEMA",
    "render_status",
    "run_top",
]
