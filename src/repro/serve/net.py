"""Line-delimited JSON front end for :class:`~repro.serve.server.PartitionServer`.

One request per line, one JSON response per line — trivially scriptable
(``nc``, a five-line client, the bundled :class:`ServeClient`) and free
of framing dependencies.  Operations:

``{"op": "partition", "src": [...], "dst": [...], "weights": [...],
   "num_vertices": N, "config": {...}, "deadline_s": X,
   "include_partition": true}``
    Submit a job; the response is the outcome's
    :meth:`~repro.serve.job.JobOutcome.to_dict`.

``{"op": "stats"}``
    Operational snapshot (:meth:`PartitionServer.stats`).

``{"op": "status"}``
    The live flight-deck snapshot (:meth:`PartitionServer.status`):
    stats, per-size-class SLO/error-budget/burn-rate state, flight
    recorder statistics, and the most recent wide events.  This is
    what ``gsap top`` polls.

``{"op": "metrics"}``
    The shared registry rendered live in Prometheus text exposition
    format (``{"text": "..."}``) — a scrape endpoint, not an at-exit
    file dump.

``{"op": "dump", "path": "...", "reason": "..."}``
    Dump the flight recorder to disk (both fields optional; without
    ``path`` the server's ``flight_dir`` names the file).

``{"op": "shutdown", "mode": "drain" | "checkpoint"}``
    Gracefully stop the server; the response carries the shutdown
    summary, after which the listener closes.

``partition`` requests may carry ``trace_id``/``parent_span_id``
(stitching the server-side span tree to the client's trace; see
:meth:`ServeClient.submit`, which mints them) and a free-form
``tenant`` label.

Malformed requests get ``{"ok": false, "error": ...}`` instead of a
dropped connection, so a buggy client can't wedge the service.
"""

from __future__ import annotations

import asyncio
import json
import socket
import uuid
from typing import Optional

from ..config import SBPConfig
from ..graph.builder import build_graph
from ..logging_util import get_logger
from ..obs.trace import TraceContext
from .server import PartitionServer

logger = get_logger("serve.net")

_MAX_LINE_BYTES = 64 * 1024 * 1024  # a million-edge request fits


class ServeFrontend:
    """Bind a :class:`PartitionServer` to a TCP listener."""

    def __init__(self, server: PartitionServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._listener: Optional[asyncio.AbstractServer] = None
        self._shutdown_requested = asyncio.Event()

    async def start(self) -> "ServeFrontend":
        await self.server.start()
        self._listener = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_LINE_BYTES,
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        logger.info("listening on %s:%d", self.host, self.port)
        return self

    async def serve_until_shutdown(self) -> dict:
        """Block until a client sends ``shutdown``; return its summary."""
        await self._shutdown_requested.wait()
        return self._shutdown_summary

    async def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "ok": False, "error": "request line too long",
                    })
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                await self._send(writer, response)
                if response.get("op") == "shutdown" and response.get("ok"):
                    self._shutdown_summary = response["summary"]
                    self._shutdown_requested.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "partition":
                return await self._op_partition(request)
            if op == "stats":
                return {"ok": True, "op": "stats",
                        "stats": self.server.stats()}
            if op == "status":
                return {"ok": True, "op": "status",
                        "status": self.server.status()}
            if op == "metrics":
                return {"ok": True, "op": "metrics",
                        "text": self.server.metrics_text()}
            if op == "dump":
                path = self.server.dump_flight(
                    str(request.get("reason", "on_demand")),
                    path=request.get("path"),
                )
                if path is None:
                    return {
                        "ok": False, "op": "dump",
                        "error": "no dump destination: pass \"path\" or "
                                 "start the server with a flight_dir",
                    }
                return {"ok": True, "op": "dump", "path": str(path)}
            if op == "shutdown":
                mode = request.get("mode", "drain")
                summary = await self.server.shutdown(mode)
                return {"ok": True, "op": "shutdown", "summary": summary}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (ValueError, TypeError, KeyError) as exc:
            return {"ok": False, "op": op,
                    "error": f"{type(exc).__name__}: {exc}"}

    async def _op_partition(self, request: dict) -> dict:
        src = request["src"]
        dst = request["dst"]
        weights = request.get("weights")
        graph = build_graph(
            src, dst, weights,
            num_vertices=request.get("num_vertices"),
        )
        config_dict = request.get("config") or {}
        config = SBPConfig(**config_dict)
        trace_id = request.get("trace_id")
        parent_span_id = request.get("parent_span_id")
        tenant = request.get("tenant")
        outcome = await self.server.submit(
            graph, config,
            deadline_s=request.get("deadline_s"),
            use_cache=bool(request.get("use_cache", True)),
            tenant=None if tenant is None else str(tenant),
            trace_id=None if trace_id is None else str(trace_id),
            parent_span_id=(
                None if parent_span_id is None else str(parent_span_id)
            ),
        )
        payload = outcome.to_dict(
            include_partition=bool(request.get("include_partition", False))
        )
        payload["ok"] = outcome.status not in ("rejected", "failed")
        payload["op"] = "partition"
        return payload

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


class ServeClient:
    """Blocking convenience client for scripts and tests."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def partition(self, src, dst, weights=None, *, num_vertices=None,
                  config=None, deadline_s=None, include_partition=False,
                  tenant=None, trace_id=None, parent_span_id=None) -> dict:
        payload = {
            "op": "partition",
            "src": [int(v) for v in src],
            "dst": [int(v) for v in dst],
            "weights": None if weights is None
            else [int(w) for w in weights],
            "num_vertices": num_vertices,
            "config": config or {},
            "deadline_s": deadline_s,
            "include_partition": include_partition,
        }
        if tenant is not None:
            payload["tenant"] = tenant
        if trace_id is not None:
            payload["trace_id"] = trace_id
        if parent_span_id is not None:
            payload["parent_span_id"] = parent_span_id
        return self.request(payload)

    def submit(self, src, dst, weights=None, *, num_vertices=None,
               config=None, deadline_s=None, include_partition=False,
               tenant=None) -> dict:
        """Submit with a client-minted trace context.

        Mints a fresh ``trace_id`` (and a client-side parent span id)
        here — the outermost hop of the request — so every server-side
        span of this job stitches to this submission.  The reply echoes
        the ``trace_id``.
        """
        context = TraceContext.mint(parent_span_id=f"client-{uuid.uuid4().hex[:16]}")
        return self.partition(
            src, dst, weights,
            num_vertices=num_vertices, config=config,
            deadline_s=deadline_s, include_partition=include_partition,
            tenant=tenant,
            trace_id=context.trace_id,
            parent_span_id=context.parent_span_id,
        )

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def status(self) -> dict:
        """Live flight-deck snapshot (stats + SLO + flight recorder)."""
        return self.request({"op": "status"})

    def metrics(self) -> str:
        """Live Prometheus text exposition page."""
        reply = self.request({"op": "metrics"})
        if not reply.get("ok"):
            raise ConnectionError(
                f"metrics request failed: {reply.get('error')}"
            )
        return reply["text"]

    def dump(self, path=None, reason: str = "on_demand") -> dict:
        """Ask the server to dump its flight recorder."""
        payload = {"op": "dump", "reason": reason}
        if path is not None:
            payload["path"] = str(path)
        return self.request(payload)

    def shutdown(self, mode: str = "drain") -> dict:
        return self.request({"op": "shutdown", "mode": mode})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
