"""Line-delimited JSON front end for :class:`~repro.serve.server.PartitionServer`.

One request per line, one JSON response per line — trivially scriptable
(``nc``, a five-line client, the bundled :class:`ServeClient`) and free
of framing dependencies.  Operations:

``{"op": "partition", "src": [...], "dst": [...], "weights": [...],
   "num_vertices": N, "config": {...}, "deadline_s": X,
   "include_partition": true}``
    Submit a job; the response is the outcome's
    :meth:`~repro.serve.job.JobOutcome.to_dict`.

``{"op": "stats"}``
    Operational snapshot (:meth:`PartitionServer.stats`).

``{"op": "shutdown", "mode": "drain" | "checkpoint"}``
    Gracefully stop the server; the response carries the shutdown
    summary, after which the listener closes.

Malformed requests get ``{"ok": false, "error": ...}`` instead of a
dropped connection, so a buggy client can't wedge the service.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Optional

from ..config import SBPConfig
from ..graph.builder import build_graph
from ..logging_util import get_logger
from .server import PartitionServer

logger = get_logger("serve.net")

_MAX_LINE_BYTES = 64 * 1024 * 1024  # a million-edge request fits


class ServeFrontend:
    """Bind a :class:`PartitionServer` to a TCP listener."""

    def __init__(self, server: PartitionServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._listener: Optional[asyncio.AbstractServer] = None
        self._shutdown_requested = asyncio.Event()

    async def start(self) -> "ServeFrontend":
        await self.server.start()
        self._listener = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_LINE_BYTES,
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        logger.info("listening on %s:%d", self.host, self.port)
        return self

    async def serve_until_shutdown(self) -> dict:
        """Block until a client sends ``shutdown``; return its summary."""
        await self._shutdown_requested.wait()
        return self._shutdown_summary

    async def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "ok": False, "error": "request line too long",
                    })
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                await self._send(writer, response)
                if response.get("op") == "shutdown" and response.get("ok"):
                    self._shutdown_summary = response["summary"]
                    self._shutdown_requested.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "partition":
                return await self._op_partition(request)
            if op == "stats":
                return {"ok": True, "op": "stats",
                        "stats": self.server.stats()}
            if op == "shutdown":
                mode = request.get("mode", "drain")
                summary = await self.server.shutdown(mode)
                return {"ok": True, "op": "shutdown", "summary": summary}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (ValueError, TypeError, KeyError) as exc:
            return {"ok": False, "op": op,
                    "error": f"{type(exc).__name__}: {exc}"}

    async def _op_partition(self, request: dict) -> dict:
        src = request["src"]
        dst = request["dst"]
        weights = request.get("weights")
        graph = build_graph(
            src, dst, weights,
            num_vertices=request.get("num_vertices"),
        )
        config_dict = request.get("config") or {}
        config = SBPConfig(**config_dict)
        outcome = await self.server.submit(
            graph, config,
            deadline_s=request.get("deadline_s"),
            use_cache=bool(request.get("use_cache", True)),
        )
        payload = outcome.to_dict(
            include_partition=bool(request.get("include_partition", False))
        )
        payload["ok"] = outcome.status not in ("rejected", "failed")
        payload["op"] = "partition"
        return payload

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


class ServeClient:
    """Blocking convenience client for scripts and tests."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def partition(self, src, dst, weights=None, *, num_vertices=None,
                  config=None, deadline_s=None,
                  include_partition=False) -> dict:
        return self.request({
            "op": "partition",
            "src": [int(v) for v in src],
            "dst": [int(v) for v in dst],
            "weights": None if weights is None
            else [int(w) for w in weights],
            "num_vertices": num_vertices,
            "config": config or {},
            "deadline_s": deadline_s,
            "include_partition": include_partition,
        })

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self, mode: str = "drain") -> dict:
        return self.request({"op": "shutdown", "mode": mode})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
