"""Result cache + single-flight dedup for the partitioning service.

Two layers prevent redundant partitioning work:

* :class:`ResultCache` — an LRU of finished
  :class:`~repro.core.result.PartitionResult` objects keyed by
  ``graph_sha256:config_sha256`` (see :mod:`repro.integrity.digest`).
  Because the partitioner is deterministic under a fixed seed, a cached
  repeat is byte-identical to recomputing it.
* :class:`SingleFlight` — coalesces *concurrent* identical requests:
  the first caller computes, the rest await the same future.  This is
  the in-flight analogue of the cache and feeds it.

Only full-fidelity, non-degraded, non-timed-out results are cached —
a degraded partition must never be served to a caller who asked at
full fidelity.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..core.result import PartitionResult


def cache_key(graph_digest: str, config_digest: str) -> str:
    """Stable identity of one partitioning request."""
    return f"{graph_digest}:{config_digest}"


class ResultCache:
    """Thread-safe LRU over finished partition results."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, PartitionResult]" = OrderedDict()
        self.hits_total = 0
        self.misses_total = 0
        self.evictions_total = 0

    def get(self, key: str) -> Optional[PartitionResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses_total += 1
                return None
            self._entries.move_to_end(key)
            self.hits_total += 1
            return result

    def put(self, key: str, result: PartitionResult) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions_total += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits_total": self.hits_total,
                "misses_total": self.misses_total,
                "evictions_total": self.evictions_total,
            }


class SingleFlight:
    """Coalesce concurrent identical requests onto one computation.

    Event-loop–confined (no lock): :meth:`claim`/:meth:`resolve`/
    :meth:`forget` must run on the owning loop — the server calls them
    from coroutines only.
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self.coalesced_total = 0

    def claim(self, key: str) -> Tuple[bool, asyncio.Future]:
        """Claim *key* for computation.

        Returns ``(leader, future)``.  The first claimant is the
        *leader* (``True``) and must eventually :meth:`resolve` or
        :meth:`forget` the key; followers get ``False`` and simply
        await the shared future.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced_total += 1
            return False, existing
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return True, future

    def resolve(self, key: str, result: PartitionResult) -> None:
        """Leader publishes *result* to all followers and releases *key*."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def forget(self, key: str, error: Optional[BaseException] = None) -> None:
        """Leader releases *key* without a shareable result.

        Followers are unblocked with ``None`` (they recompute
        individually) rather than poisoned with the leader's error —
        a follower's deadline or fault budget may well differ.
        """
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(None)

    def __len__(self) -> int:
        return len(self._inflight)
