"""Partitioning-parameter configuration (paper Table 2).

:class:`SBPConfig` carries the knobs shared by GSAP and both baselines.
Defaults reproduce Table 2 of the paper exactly; every field is validated
on construction so misconfigured sweeps fail fast instead of producing
silently-wrong benchmark rows.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from .errors import ConfigError


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for long partitioning runs.

    Parameters
    ----------
    max_attempts:
        Attempts per plateau before a fault escalates (>= 1; 1 disables
        retries).
    base_delay_s / backoff_factor / max_delay_s / jitter:
        Exponential-backoff schedule between attempts; the default base
        delay is tiny because the simulated device recovers instantly —
        production deployments raise it.
    fault_budget:
        Total device faults one run may absorb (across retries and
        degradations) before giving up with ``RetryExhaustedError``.
    checkpoint_every:
        Write a run checkpoint every N golden-section plateaus when a
        checkpoint directory is given (0 disables periodic snapshots).
    degrade_on_oom:
        Allow the degradation ladder on persistent out-of-memory faults:
        halve the vertex-move batch size (up to ``max_batch_halvings``
        times), then fall back to the host dense-blockmodel rebuild when
        ``dense_fallback`` is set.
    best_effort:
        Return the best-so-far partition (``converged=False``) when the
        plateau budget is exhausted instead of raising
        ``ConvergenceError``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.001
    backoff_factor: float = 2.0
    max_delay_s: float = 0.1
    jitter: float = 0.1
    fault_budget: int = 32
    checkpoint_every: int = 0
    degrade_on_oom: bool = True
    max_batch_halvings: int = 3
    dense_fallback: bool = True
    best_effort: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        for name in ("base_delay_s", "max_delay_s"):
            value = getattr(self, name)
            if value < 0 or not math.isfinite(value):
                raise ConfigError(f"{name} must be >= 0 and finite, got {value!r}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not (0.0 <= self.jitter < 1.0):
            raise ConfigError(f"jitter must lie in [0, 1), got {self.jitter!r}")
        if self.fault_budget < 0:
            raise ConfigError(
                f"fault_budget must be >= 0, got {self.fault_budget!r}"
            )
        if self.checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every!r}"
            )
        if self.max_batch_halvings < 0:
            raise ConfigError(
                f"max_batch_halvings must be >= 0, got {self.max_batch_halvings!r}"
            )

    def replace(self, **changes: object) -> "ResilienceConfig":
        """Return a copy with *changes* applied (validated)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Knobs for the unified tracing + metrics subsystem (:mod:`repro.obs`).

    Parameters
    ----------
    enabled:
        Master switch.  Off (the default) costs nothing: every
        instrumented call site returns before touching any state, and a
        traced run produces a bit-identical partition to an untraced
        one (tracing never consumes RNG draws).
    trace_kernels:
        Bridge the simulated device's kernel launches into the tracer
        as leaf spans (one span per launch; the dominant span volume).
    trace_transfers:
        Emit spans for host<->device PCIe transfers.
    track_deltas:
        Feed per-proposal ΔMDL values into histograms (adds one NumPy
        bucketing pass per MCMC batch).
    """

    enabled: bool = False
    trace_kernels: bool = True
    trace_transfers: bool = True
    track_deltas: bool = True

    def replace(self, **changes: object) -> "ObservabilityConfig":
        """Return a copy with *changes* applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class IntegrityConfig:
    """Silent-corruption defense knobs (:mod:`repro.integrity`).

    Parameters
    ----------
    audit:
        Master switch for the blockmodel invariant auditor.  Off (the
        default) costs nothing; on, the auditor runs at every
        ``audit_every``-th blockmodel rebuild.  Auditing never consumes
        RNG draws, so an audited run produces a bit-identical partition
        to an unaudited one.
    audit_every:
        Audit cadence in rebuild sites (1 = every rebuild).  Corruption
        at a site is only guaranteed to be repaired back to the
        fault-free trajectory when ``audit_every == 1``; larger values
        trade detection latency (and repair fidelity) for audit cost.
    repair:
        Attempt the self-healing repair ladder (targeted rebuild →
        dense rebuild → checkpoint restore) when an audit fails.  Off,
        a failed audit raises :class:`~repro.errors.IntegrityError`.
    mdl_tol:
        Relative tolerance when comparing the incrementally tracked MDL
        against the recomputed-from-scratch value.
    track_device_digests:
        Also enable the device-level CRC32 buffer digest registry
        (:meth:`repro.gpusim.Device.verify_buffers`).
    """

    audit: bool = False
    audit_every: int = 1
    repair: bool = False
    mdl_tol: float = 1e-6
    track_device_digests: bool = False

    def __post_init__(self) -> None:
        if self.audit_every < 1:
            raise ConfigError(
                f"audit_every must be >= 1, got {self.audit_every!r}"
            )
        if self.mdl_tol < 0 or not math.isfinite(self.mdl_tol):
            raise ConfigError(
                f"mdl_tol must be >= 0 and finite, got {self.mdl_tol!r}"
            )

    def replace(self, **changes: object) -> "IntegrityConfig":
        """Return a copy with *changes* applied (validated)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SBPConfig:
    """Stochastic-block-partitioning parameters (paper Table 2).

    Parameters
    ----------
    num_blocks_reduction_rate:
        Fraction of blocks merged away per block-merge phase (paper: 0.4).
    num_proposals:
        Merge proposals evaluated per block in the block-merge phase
        (paper: 10).
    max_num_nodal_itr:
        Maximum MCMC sweeps per vertex-move phase (paper: 100).
    delta_entropy_threshold1:
        Convergence threshold (relative to the initial description length)
        used before the golden-section bracket is established (paper: 5e-4).
    delta_entropy_threshold2:
        Tighter threshold used once the search is bracketed (paper: 1e-4).
    delta_entropy_moving_avg_window:
        Window, in sweeps, of the moving average used for the convergence
        test (paper: 3).
    num_batches_for_MCMC:
        Number of asynchronous-Gibbs batches a sweep is split into
        (paper: 4).  Batch ``i`` holds vertices ``v`` with
        ``v % num_batches == i``; moves within a batch are proposed against
        a frozen blockmodel and applied together.
    beta:
        Inverse temperature of the Metropolis-Hastings acceptance
        (GraphChallenge reference value: 3.0).
    min_blocks:
        Lower bound on the searched block count (golden-section floor).
    incremental_updates:
        Maintain the CSR blockmodel with sparse per-batch deltas
        (:class:`~repro.blockmodel.incremental.IncrementalBlockmodel`)
        instead of a from-scratch Algorithm-2 rebuild after every
        accepted MCMC batch.  The incremental path is exact — it
        produces bit-identical blockmodels, ΔMDL streams and final
        partitions to the rebuild path — so this is purely a
        performance knob.  The resilience ladder drops back to full
        rebuilds under persistent device faults.
    incremental_rebuild_every:
        Force a full Algorithm-2 rebuild every N incremental batch
        applications (0, the default, means pure incremental — the
        delta algebra is exact integer arithmetic, so drift-flushing
        rebuilds are unnecessary and exist only as a belt-and-braces
        knob for production paranoia).
    incremental_fallback_fraction:
        When an accepted batch touches more than this fraction of the
        blocks, one full rebuild is cheaper than the sparse patch (the
        delta covers most rows anyway); the maintainer falls back to
        :func:`~repro.blockmodel.update.rebuild_blockmodel` for that
        batch.  1.0 disables the cost-model fallback.
    seed:
        Master RNG seed; every stochastic component derives its stream
        from this value, making runs reproducible.
    resilience:
        Fault-tolerance knobs (:class:`ResilienceConfig`); a plain dict
        is accepted and coerced.
    observability:
        Tracing/metrics knobs (:class:`ObservabilityConfig`); a plain
        dict is accepted and coerced.  Disabled by default.
    integrity:
        Silent-corruption defense knobs (:class:`IntegrityConfig`); a
        plain dict is accepted and coerced.  Disabled by default.
    """

    num_blocks_reduction_rate: float = 0.4
    num_proposals: int = 10
    max_num_nodal_itr: int = 100
    delta_entropy_threshold1: float = 5e-4
    delta_entropy_threshold2: float = 1e-4
    delta_entropy_moving_avg_window: int = 3
    num_batches_for_MCMC: int = 4
    beta: float = 3.0
    min_blocks: int = 1
    incremental_updates: bool = True
    incremental_rebuild_every: int = 0
    incremental_fallback_fraction: float = 0.9
    seed: int = 0
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    integrity: IntegrityConfig = field(default_factory=IntegrityConfig)

    def __post_init__(self) -> None:
        if isinstance(self.resilience, dict):
            object.__setattr__(
                self, "resilience", ResilienceConfig(**self.resilience)
            )
        elif not isinstance(self.resilience, ResilienceConfig):
            raise ConfigError(
                "resilience must be a ResilienceConfig or dict, got "
                f"{type(self.resilience).__name__}"
            )
        if isinstance(self.observability, dict):
            object.__setattr__(
                self, "observability", ObservabilityConfig(**self.observability)
            )
        elif not isinstance(self.observability, ObservabilityConfig):
            raise ConfigError(
                "observability must be an ObservabilityConfig or dict, got "
                f"{type(self.observability).__name__}"
            )
        if isinstance(self.integrity, dict):
            object.__setattr__(self, "integrity", IntegrityConfig(**self.integrity))
        elif not isinstance(self.integrity, IntegrityConfig):
            raise ConfigError(
                "integrity must be an IntegrityConfig or dict, got "
                f"{type(self.integrity).__name__}"
            )
        if not (0.0 < self.num_blocks_reduction_rate < 1.0):
            raise ConfigError(
                "num_blocks_reduction_rate must lie in (0, 1), got "
                f"{self.num_blocks_reduction_rate!r}"
            )
        if self.num_proposals < 1:
            raise ConfigError(f"num_proposals must be >= 1, got {self.num_proposals!r}")
        if self.max_num_nodal_itr < 1:
            raise ConfigError(
                f"max_num_nodal_itr must be >= 1, got {self.max_num_nodal_itr!r}"
            )
        for name in ("delta_entropy_threshold1", "delta_entropy_threshold2"):
            value = getattr(self, name)
            if not (0.0 < value < 1.0) or not math.isfinite(value):
                raise ConfigError(f"{name} must lie in (0, 1), got {value!r}")
        if self.delta_entropy_moving_avg_window < 1:
            raise ConfigError(
                "delta_entropy_moving_avg_window must be >= 1, got "
                f"{self.delta_entropy_moving_avg_window!r}"
            )
        if self.num_batches_for_MCMC < 1:
            raise ConfigError(
                f"num_batches_for_MCMC must be >= 1, got {self.num_batches_for_MCMC!r}"
            )
        if self.beta <= 0.0 or not math.isfinite(self.beta):
            raise ConfigError(f"beta must be positive and finite, got {self.beta!r}")
        if self.min_blocks < 1:
            raise ConfigError(f"min_blocks must be >= 1, got {self.min_blocks!r}")
        if self.incremental_rebuild_every < 0:
            raise ConfigError(
                "incremental_rebuild_every must be >= 0, got "
                f"{self.incremental_rebuild_every!r}"
            )
        if (
            not (0.0 <= self.incremental_fallback_fraction <= 1.0)
            or not math.isfinite(self.incremental_fallback_fraction)
        ):
            raise ConfigError(
                "incremental_fallback_fraction must lie in [0, 1], got "
                f"{self.incremental_fallback_fraction!r}"
            )
        if self.seed < 0:
            raise ConfigError(f"seed must be non-negative, got {self.seed!r}")

    def replace(self, **changes: object) -> "SBPConfig":
        """Return a copy with *changes* applied (validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Return the configuration as a plain dictionary."""
        return dataclasses.asdict(self)

    @classmethod
    def paper_defaults(cls) -> "SBPConfig":
        """The exact parameter set of paper Table 2."""
        return cls()


#: Alias kept for symmetry with the paper's terminology.
PAPER_TABLE2 = SBPConfig.paper_defaults()
