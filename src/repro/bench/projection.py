"""Scaling-law projection of GSAP's device time to paper-scale graphs.

The paper's largest experiments (1M vertices, ~24M edges, ~15 minutes on
an A4000) are out of reach for a pure-Python wall-clock run, but the
simulated device's clock *is* defined at any size.  This module measures
GSAP at several feasible sizes and extrapolates to the Table 1 sizes —
giving a model-predicted analogue of Table 3's 1M row, clearly labelled
as a projection (EXPERIMENTS.md reports it as such).

Small graphs are *launch-overhead dominated* (the effect behind paper
Table 3's 1K-row reversal), so a single power law fitted at feasible
sizes would extrapolate almost flat.  The projection therefore
decomposes the simulated time into its two cost-model components and
fits each separately:

* ``launches(E)`` — kernel-launch count, scaling weakly with size
  (sweeps × kernels per batch; roughly the iteration structure);
* ``work(E)`` — the roofline term (compute/bandwidth), scaling ≈
  linearly with the edge count.

``t(E) = launches(E)·overhead + work(E)`` then transitions naturally
from the overhead-dominated to the throughput-dominated regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import SBPConfig
from ..core.partitioner import GSAPPartitioner
from ..errors import ReproError
from ..graph.datasets import load_dataset
from ..graph.generators import default_average_degree
from ..gpusim.device import A4000, Device


@dataclass(frozen=True)
class PowerLawFit:
    """``y = coefficient · x^exponent`` fitted in log-log space."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, x: float) -> float:
        return float(self.coefficient * x**self.exponent)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares power-law fit; requires >= 2 positive points."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) < 2 or len(xs) != len(ys):
        raise ReproError("power-law fit needs >= 2 aligned points")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ReproError("power-law fit needs positive data")
    lx, ly = np.log(xs), np.log(ys)
    exponent, intercept = np.polyfit(lx, ly, 1)
    predicted = exponent * lx + intercept
    ss_res = float(((ly - predicted) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        coefficient=float(np.exp(intercept)),
        exponent=float(exponent),
        r_squared=r2,
    )


@dataclass(frozen=True)
class MeasuredPoint:
    num_vertices: int
    num_edges: int
    sim_time_s: float
    wall_time_s: float
    num_launches: int
    work_time_s: float  # sim time minus launch/transfer overheads


@dataclass(frozen=True)
class GSAPProjection:
    """Fitted two-component scaling of GSAP's simulated device time."""

    category: str
    points: Tuple[MeasuredPoint, ...]
    launch_fit: PowerLawFit
    work_fit: PowerLawFit
    launch_overhead_s: float

    def predict_sim_time(self, num_vertices: int) -> float:
        edges = default_average_degree(num_vertices) * num_vertices
        return (
            self.launch_fit.predict(edges) * self.launch_overhead_s
            + self.work_fit.predict(edges)
        )


def measure_scaling(
    category: str = "low_low",
    sizes: Sequence[int] = (500, 1_000, 2_000),
    config: Optional[SBPConfig] = None,
    seed: int = 0,
) -> GSAPProjection:
    """Run GSAP at *sizes* and fit the two-component scaling model."""
    config = config or SBPConfig(
        max_num_nodal_itr=30,
        delta_entropy_threshold1=5e-3,
        delta_entropy_threshold2=1e-3,
        seed=seed,
    )
    overhead = A4000.kernel_launch_overhead_s
    points: List[MeasuredPoint] = []
    for size in sizes:
        graph, _ = load_dataset(category, size)
        device = Device(A4000)
        result = GSAPPartitioner(config, device=device).partition(graph)
        launches = device.profiler.launch_count() + len(
            device.profiler.transfer_records
        )
        work = max(result.sim_time_s - launches * overhead, 1e-9)
        points.append(
            MeasuredPoint(
                num_vertices=size,
                num_edges=graph.num_edges,
                sim_time_s=result.sim_time_s,
                wall_time_s=result.total_time_s,
                num_launches=launches,
                work_time_s=work,
            )
        )
    edges = [p.num_edges for p in points]
    return GSAPProjection(
        category=category,
        points=tuple(points),
        launch_fit=fit_power_law(edges, [p.num_launches for p in points]),
        work_fit=fit_power_law(edges, [p.work_time_s for p in points]),
        launch_overhead_s=overhead,
    )


def projection_markdown(
    projection: GSAPProjection,
    target_sizes: Sequence[int] = (1_000, 5_000, 20_000, 50_000, 200_000, 1_000_000),
) -> str:
    """Render measured points plus projected Table 1 sizes."""
    lines = [
        f"### Projection — GSAP simulated A4000 time ({projection.category})",
        "",
        f"launches ≈ {projection.launch_fit.coefficient:.3g} · "
        f"E^{projection.launch_fit.exponent:.2f} "
        f"(R² = {projection.launch_fit.r_squared:.3f}); "
        f"work ≈ {projection.work_fit.coefficient:.3g} · "
        f"E^{projection.work_fit.exponent:.2f} s "
        f"(R² = {projection.work_fit.r_squared:.3f})",
        "",
        "| V | E | sim time | kind |",
        "|---|---|---|---|",
    ]
    for p in projection.points:
        lines.append(
            f"| {p.num_vertices:,} | {p.num_edges:,} | "
            f"{p.sim_time_s:.3f} s | measured |"
        )
    for size in target_sizes:
        edges = int(default_average_degree(size) * size)
        predicted = projection.predict_sim_time(size)
        shown = (
            f"{predicted:.1f} s" if predicted < 120
            else f"{predicted / 60:.1f} min"
        )
        lines.append(f"| {size:,} | {edges:,} | {shown} | projected |")
    return "\n".join(lines)
