"""Benchmark harness regenerating the paper's tables and figures."""

from .harness import ALGORITHMS, BenchHarness, CellResult, make_partitioner
from .tables import table1_markdown, table3_markdown, table4_markdown, to_csv
from .figures import (
    fig8_markdown,
    fig8_series,
    fig9_markdown,
    fig9_series,
    fig10_markdown,
    fig10_series,
    fig11_markdown,
    fig11_series,
    fig12_markdown,
)
from .projection import (
    GSAPProjection,
    PowerLawFit,
    fit_power_law,
    measure_scaling,
    projection_markdown,
)
from .report import ReportOptions, build_report, write_report_artifacts
from .workloads import (
    BENCH_CATEGORIES,
    WorkloadSpec,
    bench_config,
    bench_scale,
    full_matrix,
    gsap_only_sizes,
    matrix_sizes,
    update_bench_sizes,
)

__all__ = [
    "ALGORITHMS",
    "BenchHarness",
    "CellResult",
    "make_partitioner",
    "table1_markdown",
    "table3_markdown",
    "table4_markdown",
    "to_csv",
    "fig8_markdown",
    "fig8_series",
    "fig9_markdown",
    "fig9_series",
    "fig10_markdown",
    "fig10_series",
    "fig11_markdown",
    "fig11_series",
    "fig12_markdown",
    "GSAPProjection",
    "PowerLawFit",
    "fit_power_law",
    "measure_scaling",
    "projection_markdown",
    "ReportOptions",
    "build_report",
    "write_report_artifacts",
    "BENCH_CATEGORIES",
    "WorkloadSpec",
    "bench_config",
    "bench_scale",
    "full_matrix",
    "gsap_only_sizes",
    "matrix_sizes",
    "update_bench_sizes",
]
