"""One-call report builder: every table and figure from one harness.

Used by the CLI's ``bench`` subcommand and by anyone regenerating the
EXPERIMENTS.md material programmatically::

    harness = BenchHarness(bench_config())
    harness.run_matrix(full_matrix(("uSAP", "I-SBP", "GSAP")))
    text = build_report(harness)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .figures import (
    fig8_markdown,
    fig9_markdown,
    fig10_markdown,
    fig11_markdown,
)
from .harness import BenchHarness
from .tables import table3_markdown, table4_markdown, to_csv
from .workloads import gsap_only_sizes, matrix_sizes


@dataclass(frozen=True)
class ReportOptions:
    """Which sections to include and where to probe the breakdowns."""

    include_tables: bool = True
    include_figures: bool = True
    breakdown_category: str = "high_low"  # paper Fig. 10 probes high-low
    proposal_category: str = "low_high"  # paper Fig. 11 highlights low-high
    probe_size: Optional[int] = None  # default: largest matrix size


def build_report(
    harness: BenchHarness, options: ReportOptions = ReportOptions()
) -> str:
    """Render the full evaluation report from the harness's cached cells."""
    sizes: Tuple[int, ...] = tuple(matrix_sizes()) + tuple(gsap_only_sizes())
    probe_size = options.probe_size or max(matrix_sizes())
    sections = []
    if options.include_tables:
        sections.append(
            "## Table 3 — runtime (wall clock)\n\n"
            + table3_markdown(harness.cells(), sizes)
        )
        sections.append(
            "## Table 3 — runtime (GSAP on the simulated A4000 clock)\n\n"
            + table3_markdown(harness.cells(), sizes, clock="sim")
        )
        sections.append(
            "## Table 4 — NMI vs planted truth\n\n"
            + table4_markdown(harness.cells(), sizes)
        )
    if options.include_figures:
        sections.append(fig8_markdown(harness, matrix_sizes()))
        sections.append(fig9_markdown(harness))
        sections.append(
            fig10_markdown(harness, options.breakdown_category, probe_size)
        )
        sections.append(
            fig11_markdown(harness, options.proposal_category, probe_size)
        )
    return "\n\n".join(sections)


def write_report_artifacts(
    harness: BenchHarness,
    directory,
    options: ReportOptions = ReportOptions(),
) -> Tuple[str, str]:
    """Write ``report.md`` and ``cells.csv`` under *directory*.

    Returns the two file paths as strings.
    """
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    report = build_report(harness, options)
    report_path = directory / "report.md"
    csv_path = directory / "cells.csv"
    report_path.write_text(report + "\n", encoding="utf-8")
    csv_path.write_text(to_csv(harness.cells()), encoding="utf-8")
    return str(report_path), str(csv_path)
