"""Benchmark workload and configuration definitions.

The paper's evaluation spans 1K-1M-vertex graphs and multi-hour baseline
runs; a pure-Python reproduction must scale the matrix down (DESIGN.md
§2).  Two scales are provided:

* ``quick`` (default) — the matrix every ``pytest benchmarks/`` run
  executes: all four categories at small sizes, with a uniformly reduced
  sweep budget so the full suite finishes in minutes;
* ``paper`` — Table 2's exact parameters at the largest feasible sizes,
  used once to produce the numbers recorded in EXPERIMENTS.md (opt in
  with ``GSAP_BENCH_SCALE=paper``).

Both scales apply the *same* configuration to every algorithm, so
relative comparisons (the shapes the paper's figures establish) are fair.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from ..config import SBPConfig
from ..graph.datasets import CATEGORIES

#: categories in paper order
BENCH_CATEGORIES: Tuple[str, ...] = CATEGORIES

#: sizes every algorithm runs (the Table 3 / Table 4 matrix)
QUICK_MATRIX_SIZES: Tuple[int, ...] = (200, 500)
#: sizes only GSAP runs (the baselines' "failed / >2h" region, scaled)
QUICK_GSAP_SIZES: Tuple[int, ...] = (1_000, 2_000)

PAPER_MATRIX_SIZES: Tuple[int, ...] = (1_000, 5_000)
PAPER_GSAP_SIZES: Tuple[int, ...] = (20_000, 50_000)

#: blockmodel-update microbench sizes (Figure 12's x-axis)
UPDATE_BENCH_SIZES: Tuple[int, ...] = (500, 1_000, 2_000, 5_000)
PAPER_UPDATE_BENCH_SIZES: Tuple[int, ...] = (1_000, 5_000, 20_000, 50_000)


def bench_scale() -> str:
    """Active benchmark scale: ``quick`` unless GSAP_BENCH_SCALE overrides."""
    scale = os.environ.get("GSAP_BENCH_SCALE", "quick").lower()
    return scale if scale in ("quick", "paper") else "quick"


def matrix_sizes() -> Tuple[int, ...]:
    return PAPER_MATRIX_SIZES if bench_scale() == "paper" else QUICK_MATRIX_SIZES


def gsap_only_sizes() -> Tuple[int, ...]:
    return PAPER_GSAP_SIZES if bench_scale() == "paper" else QUICK_GSAP_SIZES


def update_bench_sizes() -> Tuple[int, ...]:
    return (
        PAPER_UPDATE_BENCH_SIZES if bench_scale() == "paper" else UPDATE_BENCH_SIZES
    )


def bench_config(seed: int = 0) -> SBPConfig:
    """The SBP configuration used by benchmark runs.

    ``paper`` scale is Table 2 verbatim; ``quick`` keeps Table 2's
    structure but trims the sweep budget (fewer nodal iterations, looser
    thresholds) uniformly across algorithms so the matrix completes in
    CI-friendly time.
    """
    if bench_scale() == "paper":
        return SBPConfig(seed=seed)
    return SBPConfig(
        max_num_nodal_itr=30,
        delta_entropy_threshold1=5e-3,
        delta_entropy_threshold2=1e-3,
        seed=seed,
    )


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark cell: dataset entry + algorithm name."""

    category: str
    num_vertices: int
    algorithm: str

    @property
    def key(self) -> str:
        return f"{self.algorithm}/{self.category}/{self.num_vertices}"


def full_matrix(algorithms: Tuple[str, ...]) -> Tuple[WorkloadSpec, ...]:
    """The (category × size × algorithm) matrix at the active scale."""
    cells = []
    for category in BENCH_CATEGORIES:
        for size in matrix_sizes():
            for algo in algorithms:
                cells.append(WorkloadSpec(category, size, algo))
        for size in gsap_only_sizes():
            cells.append(WorkloadSpec(category, size, "GSAP"))
    return tuple(cells)
