"""Benchmark harness: run partitioners over the evaluation matrix.

One :class:`BenchHarness` instance caches every run, so the runtime table
(Table 3), the NMI table (Table 4) and the figures (8-11) all derive from
a single sweep — exactly how the paper's evaluation reuses runs across
its tables and figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..baselines import (
    EDiStPartitioner,
    ISBPPartitioner,
    ReferenceSBP,
    USAPPartitioner,
)
from ..config import SBPConfig
from ..core.partitioner import GSAPPartitioner
from ..core.result import PartitionResult
from ..errors import ReproError
from ..graph.datasets import load_dataset
from ..gpusim.device import A4000, Device
from ..metrics import ari, nmi
from .workloads import WorkloadSpec, bench_config

ALGORITHMS: Tuple[str, ...] = ("uSAP", "I-SBP", "GSAP")


@dataclass
class CellResult:
    """Everything recorded for one benchmark cell."""

    spec: WorkloadSpec
    result: PartitionResult
    nmi: float
    ari: float
    num_edges: int

    @property
    def runtime_s(self) -> float:
        return self.result.total_time_s

    @property
    def sim_time_s(self) -> float:
        return self.result.sim_time_s

    def row(self) -> dict:
        return {
            "algorithm": self.spec.algorithm,
            "category": self.spec.category,
            "num_vertices": self.spec.num_vertices,
            "num_edges": self.num_edges,
            "runtime_s": self.runtime_s,
            "sim_time_s": self.sim_time_s,
            "num_blocks": self.result.num_blocks,
            "mdl": self.result.mdl,
            "nmi": self.nmi,
            "ari": self.ari,
            "num_sweeps": self.result.num_sweeps,
            "block_merge_s": self.result.timings.block_merge_s,
            "vertex_move_s": self.result.timings.vertex_move_s,
            "golden_section_s": self.result.timings.golden_section_s,
            "merge_proposals": self.result.proposal_stats.merge_proposals,
            "merge_proposal_time_s": self.result.proposal_stats.merge_proposal_time_s,
            "move_proposals": self.result.proposal_stats.move_proposals,
            "move_proposal_time_s": self.result.proposal_stats.move_proposal_time_s,
        }


def make_partitioner(algorithm: str, config: SBPConfig):
    """Instantiate a partitioner by benchmark name."""
    if algorithm == "GSAP":
        return GSAPPartitioner(config, device=Device(A4000))
    if algorithm == "uSAP":
        return USAPPartitioner(config)
    if algorithm == "I-SBP":
        return ISBPPartitioner(config)
    if algorithm == "reference":
        return ReferenceSBP(config)
    if algorithm == "EDiSt":
        return EDiStPartitioner(config)
    raise ReproError(f"unknown algorithm {algorithm!r}")


class BenchHarness:
    """Runs and caches benchmark cells."""

    def __init__(self, config: Optional[SBPConfig] = None, seed: int = 0) -> None:
        self.config = config or bench_config(seed)
        self._cells: Dict[str, CellResult] = {}

    # ------------------------------------------------------------------
    def run_cell(self, spec: WorkloadSpec) -> CellResult:
        """Run (or fetch the cached) benchmark cell."""
        if spec.key in self._cells:
            return self._cells[spec.key]
        graph, truth = load_dataset(spec.category, spec.num_vertices)
        partitioner = make_partitioner(spec.algorithm, self.config)
        result = partitioner.partition(graph)
        cell = CellResult(
            spec=spec,
            result=result,
            nmi=nmi(result.partition, truth),
            ari=ari(result.partition, truth),
            num_edges=graph.num_edges,
        )
        self._cells[spec.key] = cell
        return cell

    def run_matrix(self, specs: Iterable[WorkloadSpec]) -> List[CellResult]:
        return [self.run_cell(spec) for spec in specs]

    def cells(self) -> List[CellResult]:
        return list(self._cells.values())

    # ------------------------------------------------------------------
    # derived series (the figures)
    # ------------------------------------------------------------------
    def speedup_over(
        self, baseline: str, category: str, num_vertices: int
    ) -> Optional[float]:
        """GSAP's runtime speedup over *baseline* for one cell (Fig. 8)."""
        g = self._cells.get(WorkloadSpec(category, num_vertices, "GSAP").key)
        b = self._cells.get(WorkloadSpec(category, num_vertices, baseline).key)
        if g is None or b is None or g.runtime_s <= 0:
            return None
        return b.runtime_s / g.runtime_s

    def runtime_series(
        self, algorithm: str, category: str
    ) -> List[Tuple[int, float]]:
        """(num_vertices, runtime) pairs for one algorithm/category (Fig. 9)."""
        rows = [
            (c.spec.num_vertices, c.runtime_s)
            for c in self._cells.values()
            if c.spec.algorithm == algorithm and c.spec.category == category
        ]
        return sorted(rows)

    def breakdown(self, algorithm: str, category: str, num_vertices: int) -> dict:
        """Phase shares of one cell (Fig. 10)."""
        cell = self._cells.get(WorkloadSpec(category, num_vertices, algorithm).key)
        if cell is None:
            return {}
        return cell.result.timings.shares()

    def proposal_averages(
        self, algorithm: str, category: str, num_vertices: int
    ) -> Tuple[float, float]:
        """(merge, move) average seconds per proposal of one cell (Fig. 11)."""
        cell = self._cells.get(WorkloadSpec(category, num_vertices, algorithm).key)
        if cell is None:
            return (0.0, 0.0)
        stats = cell.result.proposal_stats
        return (stats.merge_avg_s(), stats.move_avg_s())
