"""Render the paper's tables from benchmark cells.

All renderers return GitHub-flavoured-markdown strings so benchmark runs
can paste straight into EXPERIMENTS.md; ``to_csv`` serialises the raw
rows for archival.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..graph.datasets import CATEGORIES, CATEGORY_LABELS, DatasetSpec
from .harness import CellResult


def _fmt_time(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 60:
        minutes = int(seconds // 60)
        return f"{minutes}m{seconds - 60 * minutes:.0f}s"
    return f"{seconds:.2f}s"


def _index(cells: Iterable[CellResult]) -> Dict[Tuple[str, str, int], CellResult]:
    return {
        (c.spec.algorithm, c.spec.category, c.spec.num_vertices): c for c in cells
    }


def table1_markdown(sizes: Sequence[int]) -> str:
    """Table 1: dataset attributes per category and size."""
    lines = ["| Category | V | ~E (target) | B |", "|---|---|---|---|"]
    for category in CATEGORIES:
        for size in sizes:
            spec = DatasetSpec(category, size)
            lines.append(
                f"| {CATEGORY_LABELS[category]} | {size:,} | "
                f"{spec.expected_num_edges:,} | {spec.num_blocks} |"
            )
    return "\n".join(lines)


def table3_markdown(
    cells: Iterable[CellResult],
    sizes: Sequence[int],
    algorithms: Sequence[str] = ("uSAP", "I-SBP", "GSAP"),
    clock: str = "wall",
) -> str:
    """Table 3: runtime matrix (category-major columns, sizes as rows).

    ``clock='sim'`` renders GSAP's simulated-device time instead of wall
    time (baselines always report wall time; they have no device).
    """
    index = _index(cells)
    head = "| V | " + " | ".join(
        f"{CATEGORY_LABELS[c]} {a}" for c in CATEGORIES for a in algorithms
    ) + " |"
    sep = "|" + "---|" * (1 + len(CATEGORIES) * len(algorithms))
    lines = [head, sep]
    for size in sizes:
        row = [f"| {size:,} |"]
        for category in CATEGORIES:
            for algo in algorithms:
                cell = index.get((algo, category, size))
                if cell is None:
                    row.append(" - |")
                    continue
                seconds = (
                    cell.sim_time_s
                    if clock == "sim" and algo == "GSAP"
                    else cell.runtime_s
                )
                row.append(f" {_fmt_time(seconds)} |")
        lines.append("".join(row))
    return "\n".join(lines)


def table4_markdown(
    cells: Iterable[CellResult],
    sizes: Sequence[int],
    algorithms: Sequence[str] = ("uSAP", "I-SBP", "GSAP"),
) -> str:
    """Table 4: NMI matrix, same layout as Table 3."""
    index = _index(cells)
    head = "| V | " + " | ".join(
        f"{CATEGORY_LABELS[c]} {a}" for c in CATEGORIES for a in algorithms
    ) + " |"
    sep = "|" + "---|" * (1 + len(CATEGORIES) * len(algorithms))
    lines = [head, sep]
    for size in sizes:
        row = [f"| {size:,} |"]
        for category in CATEGORIES:
            for algo in algorithms:
                cell = index.get((algo, category, size))
                row.append(f" {cell.nmi:.2f} |" if cell else " - |")
        lines.append("".join(row))
    return "\n".join(lines)


def to_csv(cells: Iterable[CellResult]) -> str:
    """All cell rows as CSV (archival format for EXPERIMENTS.md runs)."""
    rows = [c.row() for c in cells]
    if not rows:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()
