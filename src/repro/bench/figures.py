"""Render the paper's figures as text series + ASCII charts.

Each ``figN_series`` function returns the plotted data (what a plotting
script would consume); each ``figN_markdown`` renders it readably for
EXPERIMENTS.md.  A small ASCII bar helper keeps the output legible in a
terminal, matching the no-display constraint of the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph.datasets import CATEGORIES, CATEGORY_LABELS
from .harness import BenchHarness


def _bar(value: float, scale: float, width: int = 40) -> str:
    if scale <= 0:
        return ""
    n = max(0, min(width, int(round(width * value / scale))))
    return "#" * n


# ----------------------------------------------------------------------
# Figure 8: GSAP speedup over uSAP and I-SBP per category/size
# ----------------------------------------------------------------------
def fig8_series(
    harness: BenchHarness, sizes: Sequence[int]
) -> Dict[str, List[Tuple[str, int, Optional[float]]]]:
    """``{baseline: [(category, size, speedup), ...]}``."""
    out: Dict[str, List[Tuple[str, int, Optional[float]]]] = {}
    for baseline in ("uSAP", "I-SBP"):
        series = []
        for category in CATEGORIES:
            for size in sizes:
                series.append(
                    (category, size, harness.speedup_over(baseline, category, size))
                )
        out[baseline] = series
    return out


def fig8_markdown(harness: BenchHarness, sizes: Sequence[int]) -> str:
    series = fig8_series(harness, sizes)
    lines = ["### Figure 8 — GSAP speedup over CPU baselines", ""]
    values = [
        v for rows in series.values() for (_, _, v) in rows if v is not None
    ]
    scale = max(values) if values else 1.0
    for baseline, rows in series.items():
        lines.append(f"**vs {baseline}**")
        lines.append("")
        lines.append("| category | V | speedup | |")
        lines.append("|---|---|---|---|")
        for category, size, v in rows:
            shown = f"{v:.1f}x" if v is not None else "-"
            bar = _bar(v, scale) if v is not None else ""
            lines.append(
                f"| {CATEGORY_LABELS[category]} | {size:,} | {shown} | `{bar}` |"
            )
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 9: runtime-vs-size curves on the Low-Low category
# ----------------------------------------------------------------------
def fig9_series(
    harness: BenchHarness, category: str = "low_low"
) -> Dict[str, List[Tuple[int, float]]]:
    return {
        algo: harness.runtime_series(algo, category)
        for algo in ("uSAP", "I-SBP", "GSAP")
    }


def fig9_markdown(harness: BenchHarness, category: str = "low_low") -> str:
    series = fig9_series(harness, category)
    lines = [
        f"### Figure 9 — runtime on the {CATEGORY_LABELS[category]} category",
        "",
        "| V | " + " | ".join(series.keys()) + " |",
        "|---|" + "---|" * len(series),
    ]
    sizes = sorted({v for rows in series.values() for v, _ in rows})
    lookup = {
        algo: dict(rows) for algo, rows in series.items()
    }
    for size in sizes:
        cells = []
        for algo in series:
            t = lookup[algo].get(size)
            cells.append(f"{t:.2f}s" if t is not None else "-")
        lines.append(f"| {size:,} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 10: phase-share breakdown
# ----------------------------------------------------------------------
def fig10_series(
    harness: BenchHarness, category: str, size: int
) -> Dict[str, Dict[str, float]]:
    return {
        algo: harness.breakdown(algo, category, size)
        for algo in ("uSAP", "I-SBP", "GSAP")
    }


def fig10_markdown(harness: BenchHarness, category: str, size: int) -> str:
    series = fig10_series(harness, category, size)
    lines = [
        f"### Figure 10 — runtime breakdown "
        f"({CATEGORY_LABELS[category]}, {size:,} vertices)",
        "",
        "| algorithm | block-merge | vertex-move | golden-section |",
        "|---|---|---|---|",
    ]
    for algo, shares in series.items():
        if not shares:
            lines.append(f"| {algo} | - | - | - |")
            continue
        lines.append(
            f"| {algo} | {shares['block_merge']:.1%} | "
            f"{shares['vertex_move']:.1%} | {shares['golden_section']:.1%} |"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 11: average runtime per proposal
# ----------------------------------------------------------------------
def fig11_series(
    harness: BenchHarness, category: str, size: int
) -> Dict[str, Tuple[float, float]]:
    return {
        algo: harness.proposal_averages(algo, category, size)
        for algo in ("uSAP", "I-SBP", "GSAP")
    }


def fig11_markdown(harness: BenchHarness, category: str, size: int) -> str:
    series = fig11_series(harness, category, size)
    lines = [
        f"### Figure 11 — average time per proposal "
        f"({CATEGORY_LABELS[category]}, {size:,} vertices)",
        "",
        "| algorithm | block-merge proposal | vertex-move proposal |",
        "|---|---|---|",
    ]
    for algo, (merge_avg, move_avg) in series.items():
        lines.append(
            f"| {algo} | {merge_avg * 1e6:.1f} µs | {move_avg * 1e6:.1f} µs |"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 12: blockmodel-update speedup (device vs CPU loop)
# ----------------------------------------------------------------------
def fig12_markdown(rows: Iterable[Tuple[int, int, float, float]]) -> str:
    """Render ``(num_vertices, num_edges, gpu_s, cpu_s)`` rows."""
    lines = [
        "### Figure 12 — blockmodel update: device vs CPU",
        "",
        "| V | E | device update | CPU update | speedup |",
        "|---|---|---|---|---|",
    ]
    for v, e, gpu_s, cpu_s in rows:
        speedup = cpu_s / gpu_s if gpu_s > 0 else float("inf")
        lines.append(
            f"| {v:,} | {e:,} | {gpu_s * 1e3:.1f} ms | {cpu_s * 1e3:.1f} ms | "
            f"{speedup:.1f}x |"
        )
    return "\n".join(lines)
